//! Closed-form analytical scoring tier for the dataflow search.
//!
//! The [`FoldScorer`](crate::fold::FoldScorer) fast path still *folds*
//! every lattice point to score a candidate — O(points) integer dot
//! products per transform. But for the iteration spaces the search
//! actually runs on (a full rectangular bounds box, one recurrence
//! difference per variable, box-shaped IO access sets — exactly what
//! [`IterationSpace::elaborate`] produces), every field of the
//! [`StructureSummary`] has a closed form in the transform matrix alone:
//!
//! * An invertible integer transform is injective on `Z^rank`, so a
//!   space-time collision over distinct box points is impossible — no
//!   per-point collision scan is needed.
//! * The spatial rows `S` (the first `rank − 1` rows) have a rank-1
//!   integer kernel spanned by a primitive vector `v` (the cofactor
//!   "cross product" along the time row, divided by its gcd):
//!   `S·x = S·y ⇔ x − y ∈ Z·v`. Two points share a PE exactly when they
//!   lie on the same `v`-line, and an axis-aligned box is `v`-convex, so
//!   **the number of PEs is the number of `v`-lines meeting the box**:
//!   `lines(e, v) = Πᵢ eᵢ − Πᵢ max(0, eᵢ − |vᵢ|)` for box extents `e`
//!   (each line meets the box in a contiguous run; the formula counts the
//!   run heads, the points `p` with `p − v` outside the box).
//! * A variable's connections all share one difference `d`; the source
//!   points fill the box `B ∩ (B − d)` with extents
//!   `mᵢ = max(0, eᵢ − |dᵢ|)`. Sources on one `v`-line have destinations
//!   on one `v`-line too (`dst = src + d`), so **distinct wires per
//!   variable = lines(m, v)**, all moving (some spatial row moves `d`) or
//!   all stationary (`S·d = 0`).
//! * Each `(tensor, direction)` IO group's distinct request points fill a
//!   sub-box `F`, so **its distinct ports = lines(extents(F), v)**.
//! * The time row `t` is separable over the box:
//!   `time_steps = Σᵢ max(tᵢ·loᵢ, tᵢ·(hiᵢ−1)) − Σᵢ min(...) + 1`.
//!
//! [`AnalyticScorer::try_new`] verifies the geometric preconditions
//! *exactly once per search* (bit vectors over the elaborated points,
//! connections, and IO requests); if any fails it returns `None` and the
//! search scores every candidate through the fold, exactly as before.
//! Per candidate, [`AnalyticScorer::score_rows`] costs O(rank³ + groups)
//! — independent of the number of lattice points — and returns `None`
//! (fall back to the fold) on any arithmetic overflow or causality
//! violation, so it never has to reproduce the fold's error values: a
//! `Some` summary is byte-identical to the fold's, which
//! `crates/core/tests/fold_equivalence.rs` proves by proptest, and the
//! search re-folds every ranked survivor as an oracle backstop
//! ([`CompileError::AnalyticDivergence`] if the tiers ever disagree).
//!
//! [`IterationSpace::elaborate`]: crate::iterspace::IterationSpace::elaborate
//! [`CompileError::AnalyticDivergence`]: crate::error::CompileError::AnalyticDivergence

use crate::fold::StructureSummary;
use crate::func::Functionality;
use crate::iterspace::{IoDir, IterationSpace, PointId};

/// One per-variable connection class: the shared recurrence difference
/// and the extents of the source sub-box `B ∩ (B − d)`.
#[derive(Clone, Debug)]
struct ConnGroup {
    diff: Vec<i64>,
    src_extents: Vec<i64>,
}

/// One `(tensor, direction)` IO group: the extents of the sub-box its
/// distinct request points fill.
#[derive(Clone, Debug)]
struct IoGroup {
    extents: Vec<i64>,
}

/// Reusable per-worker scratch for [`AnalyticScorer::score_rows`]: the
/// minor buffer for the kernel cofactors and the kernel vector itself.
#[derive(Clone, Debug)]
pub struct AnalyticScratch {
    minor: Vec<i64>,
    det: Vec<i128>,
    v: Vec<i64>,
}

impl AnalyticScratch {
    /// Scratch sized for one scorer.
    pub fn for_scorer(s: &AnalyticScorer) -> AnalyticScratch {
        let m = s.rank.saturating_sub(1);
        AnalyticScratch {
            minor: vec![0; m * m],
            det: vec![0; m * m],
            v: vec![0; s.rank],
        }
    }
}

/// The closed-form analytical tier: verified box geometry of one
/// iteration space, against which candidate transforms are scored in
/// O(rank³ + groups) without touching a single lattice point.
#[derive(Clone, Debug)]
pub struct AnalyticScorer {
    rank: usize,
    n_points: usize,
    extents: Vec<i64>,
    lo: Vec<i64>,
    hi1: Vec<i64>,
    conn_groups: Vec<ConnGroup>,
    io_groups: Vec<IoGroup>,
}

/// Number of lattice lines of direction `v` meeting a box with the given
/// extents (see the module docs). `None` on overflow.
fn lines(extents: &[i64], v: &[i64]) -> Option<usize> {
    let mut all: u128 = 1;
    let mut interior: u128 = 1;
    for (&e, &vi) in extents.iter().zip(v) {
        if e <= 0 {
            return Some(0);
        }
        let e = e as u128;
        all = all.checked_mul(e)?;
        interior = interior.checked_mul(e - (vi.unsigned_abs() as u128).min(e))?;
    }
    usize::try_from(all - interior).ok()
}

/// Checked dot product of two `i64` slices.
fn dot(a: &[i64], b: &[i64]) -> Option<i64> {
    let mut acc = 0i64;
    for (&x, &y) in a.iter().zip(b) {
        acc = acc.checked_add(x.checked_mul(y)?)?;
    }
    Some(acc)
}

/// Exact Bareiss determinant on `i128` intermediates, `None` if the
/// result leaves `i64`. Callers pre-bound the entries so intermediates
/// (determinants of sub-minors) stay within `i64` and products of two of
/// them within `i128`.
fn det_exact(rows: &[i64], n: usize, buf: &mut [i128]) -> Option<i64> {
    if n == 0 {
        return Some(1);
    }
    for (b, &x) in buf.iter_mut().zip(rows) {
        *b = x as i128;
    }
    let m = buf;
    let mut sign = 1i128;
    let mut prev = 1i128;
    for k in 0..n - 1 {
        if m[k * n + k] == 0 {
            match (k + 1..n).find(|&r| m[r * n + k] != 0) {
                Some(r) => {
                    for c in 0..n {
                        m.swap(k * n + c, r * n + c);
                    }
                    sign = -sign;
                }
                None => return Some(0),
            }
        }
        for i in k + 1..n {
            for j in k + 1..n {
                m[i * n + j] = (m[i * n + j] * m[k * n + k] - m[i * n + k] * m[k * n + j]) / prev;
            }
            m[i * n + k] = 0;
        }
        prev = m[k * n + k];
    }
    i64::try_from(sign * m[n * n - 1]).ok()
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl AnalyticScorer {
    /// Verifies the iteration space has the box geometry the closed forms
    /// require, returning `None` (score everything through the fold) on
    /// any deviation:
    ///
    /// * the elaborated points are exactly the bounds box;
    /// * each variable's connections share one difference vector and
    ///   their endpoints exactly fill `B ∩ (B − d)`;
    /// * each `(tensor, direction)` IO group's distinct request points
    ///   exactly fill an axis-aligned sub-box.
    ///
    /// Runs once per search, in O(points · rank + conns · rank + io).
    pub fn try_new(is: &IterationSpace, func: &Functionality) -> Option<AnalyticScorer> {
        let bounds = is.bounds();
        let rank = bounds.rank();
        if rank == 0 {
            return None;
        }
        let n_points = is.num_points();
        if n_points == 0 || n_points != bounds.num_points() {
            return None;
        }
        let lo: Vec<i64> = (0..rank)
            .map(|d| bounds.lo(crate::index::IndexId(d)))
            .collect();
        let hi1: Vec<i64> = (0..rank)
            .map(|d| bounds.hi(crate::index::IndexId(d)) - 1)
            .collect();
        let extents: Vec<i64> = (0..rank).map(|d| hi1[d] - lo[d] + 1).collect();

        // Row-major strides for mapping a coordinate to its box position.
        let mut strides = vec![1usize; rank];
        for d in (0..rank - 1).rev() {
            strides[d] = strides[d + 1] * extents[d + 1] as usize;
        }
        let box_pos = |coords: &[i64]| -> Option<usize> {
            let mut pos = 0usize;
            for d in 0..rank {
                let c = coords[d];
                if c < lo[d] || c > hi1[d] {
                    return None;
                }
                pos += (c - lo[d]) as usize * strides[d];
            }
            Some(pos)
        };

        // The elaborated points must be exactly the box (distinct,
        // in-bounds, and as many as the box holds).
        let mut seen = vec![false; n_points];
        for pid in 0..n_points {
            let pos = box_pos(is.point(PointId(pid)).coords())?;
            if seen[pos] {
                return None;
            }
            seen[pos] = true;
        }

        // Connection classes: one per variable, uniform difference, with
        // destinations exactly filling the shifted sub-box B ∩ (B + d).
        let mut var_group: Vec<Option<usize>> = vec![None; func.num_vars()];
        let mut conn_groups: Vec<ConnGroup> = Vec::new();
        let mut group_dsts: Vec<Vec<bool>> = Vec::new();
        for c in is.conns() {
            let gix = match var_group.get(c.var.0).copied().flatten() {
                Some(gix) => {
                    if conn_groups[gix].diff != c.diff {
                        return None;
                    }
                    gix
                }
                None => {
                    let src_extents = (0..rank)
                        .map(|d| (extents[d] - c.diff[d].abs()).max(0))
                        .collect();
                    conn_groups.push(ConnGroup {
                        diff: c.diff.clone(),
                        src_extents,
                    });
                    group_dsts.push(vec![false; n_points]);
                    *var_group.get_mut(c.var.0)? = Some(conn_groups.len() - 1);
                    conn_groups.len() - 1
                }
            };
            let src = is.point(c.src).coords();
            let dst = is.point(c.dst).coords();
            for d in 0..rank {
                if dst[d] - src[d] != conn_groups[gix].diff[d] {
                    return None;
                }
            }
            group_dsts[gix][box_pos(dst)?] = true;
        }
        for (g, dsts) in conn_groups.iter().zip(&group_dsts) {
            // Every destination must lie in the shifted sub-box, and the
            // distinct count must fill it — together: set equality.
            let volume: usize = g
                .src_extents
                .iter()
                .map(|&m| m as usize)
                .try_fold(1usize, |a, m| a.checked_mul(m))?;
            let mut count = 0usize;
            for (pos, &hit) in dsts.iter().enumerate() {
                if !hit {
                    continue;
                }
                let mut rem = pos;
                for d in 0..rank {
                    let c = lo[d] + (rem / strides[d]) as i64;
                    rem %= strides[d];
                    let dlo = lo[d] + g.diff[d].max(0);
                    let dhi = hi1[d] + g.diff[d].min(0);
                    if c < dlo || c > dhi {
                        return None;
                    }
                }
                count += 1;
            }
            if count != volume {
                return None;
            }
        }

        // IO groups: distinct request points per (tensor, direction) must
        // exactly fill their bounding box.
        let n_io_groups = func.num_tensors() * 2;
        let mut io_points: Vec<Vec<bool>> = vec![Vec::new(); n_io_groups];
        for io in is.io_conns() {
            let gix = io.tensor.0 * 2 + usize::from(io.dir == IoDir::Write);
            let slot = io_points.get_mut(gix)?;
            if slot.is_empty() {
                slot.resize(n_points, false);
            }
            slot[io.point.0] = true;
        }
        let mut io_groups: Vec<IoGroup> = Vec::new();
        for marked in &io_points {
            if marked.is_empty() {
                continue;
            }
            let mut bmin = vec![i64::MAX; rank];
            let mut bmax = vec![i64::MIN; rank];
            let mut count = 0usize;
            for (pid, &hit) in marked.iter().enumerate() {
                if !hit {
                    continue;
                }
                count += 1;
                let coords = is.point(PointId(pid)).coords();
                for d in 0..rank {
                    bmin[d] = bmin[d].min(coords[d]);
                    bmax[d] = bmax[d].max(coords[d]);
                }
            }
            if count == 0 {
                continue;
            }
            let extents: Vec<i64> = (0..rank).map(|d| bmax[d] - bmin[d] + 1).collect();
            let volume: usize = extents
                .iter()
                .map(|&e| e as usize)
                .try_fold(1usize, |a, e| a.checked_mul(e))?;
            if count != volume {
                return None;
            }
            io_groups.push(IoGroup { extents });
        }

        Some(AnalyticScorer {
            rank,
            n_points,
            extents,
            lo,
            hi1,
            conn_groups,
            io_groups,
        })
    }

    /// The iteration rank candidates must match.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Scores a candidate from its flat row-major matrix (which must be
    /// invertible — the search checks the determinant first). Returns the
    /// exact [`StructureSummary`] the fold would produce, or `None` if a
    /// closed form does not apply to this candidate (a causality
    /// violation, entries too large for exact cofactors, or arithmetic
    /// overflow) — callers fall back to the fold, which classifies the
    /// candidate exactly as if this tier did not exist.
    pub fn score_rows(
        &self,
        rows: &[i64],
        scratch: &mut AnalyticScratch,
    ) -> Option<StructureSummary> {
        let r = self.rank;
        debug_assert_eq!(rows.len(), r * r);

        // The kernel vector of the spatial rows: v_i = det(minor_i),
        // where minor_i drops column i. Bound the entries so the Bareiss
        // intermediates provably fit: (r−1)! · b^(r−1) ≤ i64::MAX.
        let n = r - 1;
        let b = rows[..n * r].iter().map(|e| e.abs()).max().unwrap_or(0);
        let mut bound = 1i128;
        for f in 1..=n as i128 {
            bound = bound.checked_mul(f)?.checked_mul(b.max(1) as i128)?;
        }
        if bound > i64::MAX as i128 {
            return None;
        }
        if n == 0 {
            scratch.v[0] = 1;
        } else {
            for col in 0..r {
                for i in 0..n {
                    let row = &rows[i * r..(i + 1) * r];
                    let mslot = &mut scratch.minor[i * n..(i + 1) * n];
                    let mut jj = 0;
                    for (j, &e) in row.iter().enumerate() {
                        if j != col {
                            mslot[jj] = e;
                            jj += 1;
                        }
                    }
                }
                scratch.v[col] = det_exact(&scratch.minor, n, &mut scratch.det)?;
            }
        }
        let g = scratch
            .v
            .iter()
            .fold(0u64, |acc, &x| gcd(acc, x.unsigned_abs()));
        if g == 0 {
            // The spatial rows are rank-deficient, which contradicts an
            // invertible transform — the caller broke the contract; let
            // the fold sort it out.
            return None;
        }
        if g > 1 {
            for x in scratch.v.iter_mut() {
                *x /= g as i64;
            }
        }
        let v = &scratch.v;

        let num_pes = lines(&self.extents, v)?;

        // Separable time range over the box.
        let trow = &rows[n * r..];
        let mut tmin = 0i64;
        let mut tmax = 0i64;
        for (d, &t) in trow.iter().enumerate().take(r) {
            let a = t.checked_mul(self.lo[d])?;
            let z = t.checked_mul(self.hi1[d])?;
            tmin = tmin.checked_add(a.min(z))?;
            tmax = tmax.checked_add(a.max(z))?;
        }
        let time_steps = tmax.checked_sub(tmin)?.checked_add(1)?;

        // Wires per connection class: moving if any spatial row moves the
        // difference, stationary otherwise.
        let mut moving = 0usize;
        let mut stationary = 0usize;
        for gconn in &self.conn_groups {
            if dot(trow, &gconn.diff)? < 0 {
                return None; // causality: the fold owns error attribution
            }
            let wires = lines(&gconn.src_extents, v)?;
            let mut is_moving = false;
            for i in 0..n {
                if dot(&rows[i * r..(i + 1) * r], &gconn.diff)? != 0 {
                    is_moving = true;
                    break;
                }
            }
            if is_moving {
                moving = moving.checked_add(wires)?;
            } else {
                stationary = stationary.checked_add(wires)?;
            }
        }

        let mut io_ports = 0usize;
        for gio in &self.io_groups {
            io_ports = io_ports.checked_add(lines(&gio.extents, v)?)?;
        }

        Some(StructureSummary {
            num_pes,
            moving_conns: moving,
            stationary_conns: stationary,
            io_ports,
            time_steps,
        })
    }

    /// The peak utilization bound of a scored structure: active lattice
    /// points over the `PEs × time` envelope the transform unfolds them
    /// into. Always in `[0, 1]` — the transform maps the `n_points`
    /// distinct iterations injectively into that envelope.
    pub fn utilization_bound(&self, s: &StructureSummary) -> f64 {
        let envelope = s.num_pes as f64 * s.time_steps as f64;
        if envelope <= 0.0 {
            0.0
        } else {
            (self.n_points as f64 / envelope).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::{FoldScorer, FoldScratch};
    use crate::index::Bounds;
    use crate::transform::SpaceTimeTransform;

    fn matmul_space(n: usize) -> (Functionality, IterationSpace) {
        let f = Functionality::matmul(n, n, n);
        let is = IterationSpace::elaborate(&f, &Bounds::from_extents(&[n, n, n])).unwrap();
        (f, is)
    }

    fn flat_rows(t: &SpaceTimeTransform) -> Vec<i64> {
        let m = t.matrix();
        let mut rows = Vec::new();
        for r in 0..m.rows() {
            rows.extend_from_slice(m.row(r));
        }
        rows
    }

    #[test]
    fn analytic_applies_to_elaborated_matmul() {
        let (f, is) = matmul_space(4);
        let a = AnalyticScorer::try_new(&is, &f).expect("matmul geometry is all boxes");
        assert_eq!(a.rank(), 3);
        assert_eq!(a.conn_groups.len(), 3);
        assert_eq!(a.io_groups.len(), 3);
    }

    #[test]
    fn gallery_matches_the_fold_exactly() {
        let (f, is) = matmul_space(4);
        let a = AnalyticScorer::try_new(&is, &f).unwrap();
        let fold = FoldScorer::new(&is, &f);
        let mut ascratch = AnalyticScratch::for_scorer(&a);
        let mut fscratch = FoldScratch::for_scorer(&fold);
        for t in [
            SpaceTimeTransform::output_stationary(),
            SpaceTimeTransform::input_stationary(),
            SpaceTimeTransform::hexagonal(),
            SpaceTimeTransform::output_stationary()
                .with_time_scale(2)
                .unwrap(),
        ] {
            let rows = flat_rows(&t);
            let got = a.score_rows(&rows, &mut ascratch).expect("scorable");
            let want = fold
                .score_rows(&rows, &mut fscratch)
                .expect("packable")
                .expect("valid");
            assert_eq!(got, want, "{t}");
        }
    }

    #[test]
    fn causality_violations_defer_to_the_fold() {
        let (f, is) = matmul_space(3);
        let a = AnalyticScorer::try_new(&is, &f).unwrap();
        let mut s = AnalyticScratch::for_scorer(&a);
        let t = SpaceTimeTransform::output_stationary()
            .with_time_row(&[1, 1, -1])
            .unwrap();
        assert_eq!(a.score_rows(&flat_rows(&t), &mut s), None);
    }

    #[test]
    fn oversized_entries_defer_to_the_fold() {
        let (f, is) = matmul_space(3);
        let a = AnalyticScorer::try_new(&is, &f).unwrap();
        let mut s = AnalyticScratch::for_scorer(&a);
        // Entries large enough that the cofactor bound cannot be
        // certified: the tier must refuse rather than risk overflow.
        let huge = 1i64 << 62;
        let rows = vec![huge, 0, 0, 0, huge, 0, 0, 0, 1];
        assert_eq!(a.score_rows(&rows, &mut s), None);
    }

    #[test]
    fn utilization_bound_is_points_over_envelope() {
        let (f, is) = matmul_space(4);
        let a = AnalyticScorer::try_new(&is, &f).unwrap();
        let mut s = AnalyticScratch::for_scorer(&a);
        let t = SpaceTimeTransform::output_stationary();
        let summary = a.score_rows(&flat_rows(&t), &mut s).unwrap();
        let u = a.utilization_bound(&summary);
        let want = 64.0 / (summary.num_pes as f64 * summary.time_steps as f64);
        assert!((u - want).abs() < 1e-12, "got {u}, want {want}");
        assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn lines_counts_fibers_in_boxes() {
        // 3×3 box, diagonal direction: 9 − 4 = 5 diagonals.
        assert_eq!(lines(&[3, 3], &[1, 1]), Some(5));
        // Axis direction: each column is one line.
        assert_eq!(lines(&[3, 4], &[1, 0]), Some(4));
        // Step larger than the box: every point its own line.
        assert_eq!(lines(&[3, 3], &[5, 1]), Some(9));
        // Degenerate box.
        assert_eq!(lines(&[0, 3], &[1, 1]), Some(0));
    }
}
