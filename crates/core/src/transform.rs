//! Space-time transforms: Stellar's dataflow specification (§III-B).
//!
//! A dataflow is an invertible integer matrix `T` mapping tensor iteration
//! coordinates to `(space..., time)` (Equation 1). Changing numeric entries
//! of `T` moves between input-stationary, output-stationary, hexagonal, and
//! other dataflows (Figure 2), and scaling entries of the final (time) row
//! adds or removes pipeline registers (Figure 3).

use std::fmt;

use stellar_linalg::{IntMat, RatMat};

use crate::error::CompileError;

/// An invertible integer space-time transform.
///
/// The first `rows - 1` rows map iteration coordinates to spatial
/// coordinates; the final row maps them to the time step.
///
/// # Examples
///
/// ```
/// use stellar_core::SpaceTimeTransform;
///
/// let t = SpaceTimeTransform::output_stationary();
/// // The MAC at (i=1, j=2, k=3) runs on PE (x=1, y=2) at t = 1+2+3.
/// assert_eq!(t.apply(&[1, 2, 3]), vec![1, 2, 6]);
/// let back = t.invert(&[1, 2, 6]).unwrap();
/// assert_eq!(back, vec![1, 2, 3]);
/// ```
#[derive(Clone, PartialEq)]
pub struct SpaceTimeTransform {
    mat: IntMat,
    inv: RatMat,
}

impl SpaceTimeTransform {
    /// Wraps an integer matrix as a space-time transform.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidTransform`] if the matrix is not
    /// square or not invertible.
    pub fn new(mat: IntMat) -> Result<SpaceTimeTransform, CompileError> {
        if !mat.is_square() {
            return Err(CompileError::InvalidTransform(format!(
                "transform must be square, got {}x{}",
                mat.rows(),
                mat.cols()
            )));
        }
        let inv = mat
            .inverse()
            .ok_or_else(|| CompileError::InvalidTransform("transform is singular".into()))?;
        Ok(SpaceTimeTransform { mat, inv })
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square and invertible; use
    /// [`SpaceTimeTransform::new`] for fallible construction.
    pub fn from_rows(rows: &[&[i64]]) -> SpaceTimeTransform {
        SpaceTimeTransform::new(IntMat::from_rows(rows)).expect("invalid space-time transform")
    }

    /// The identity transform of the given rank (every iterator becomes a
    /// time axis, nothing is spatial). The identity is its own inverse, so
    /// unlike [`SpaceTimeTransform::new`] this cannot fail.
    pub fn identity(rank: usize) -> SpaceTimeTransform {
        SpaceTimeTransform {
            mat: IntMat::identity(rank),
            inv: RatMat::identity(rank),
        }
    }

    /// The output-stationary matmul dataflow of Figure 2b:
    /// `x = i`, `y = j`, `t = i + j + k`. Partial sums stay in place; `A`
    /// and `B` stream through the array.
    pub fn output_stationary() -> SpaceTimeTransform {
        SpaceTimeTransform::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[1, 1, 1]])
    }

    /// The input-stationary matmul dataflow of Figure 2a:
    /// `x = k`, `y = j`, `t = i + j + k`. The `B` inputs stay resident in
    /// PEs (indexed by `(k, j)`); partial sums travel down the array.
    pub fn input_stationary() -> SpaceTimeTransform {
        SpaceTimeTransform::from_rows(&[&[0, 0, 1], &[0, 1, 0], &[1, 1, 1]])
    }

    /// A weight-stationary systolic dataflow in the Gemmini style: the same
    /// PE placement as [`SpaceTimeTransform::input_stationary`] (weights
    /// indexed by `(k, j)` stay resident).
    pub fn weight_stationary() -> SpaceTimeTransform {
        SpaceTimeTransform::input_stationary()
    }

    /// The hexagonal dataflow of Figure 2c, which spatially unrolls all
    /// three matmul iterators onto a 2-D plane: `x = i - k`, `y = j - k`,
    /// `t = i + j + k`.
    pub fn hexagonal() -> SpaceTimeTransform {
        SpaceTimeTransform::from_rows(&[&[1, 0, -1], &[0, 1, -1], &[1, 1, 1]])
    }

    /// Returns this transform with the time row multiplied by `factor`,
    /// uniformly adding pipeline registers along every connection
    /// (Figure 3's "more aggressively pipelined" variants).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidTransform`] if `factor` is zero.
    pub fn with_time_scale(&self, factor: i64) -> Result<SpaceTimeTransform, CompileError> {
        if factor == 0 {
            return Err(CompileError::InvalidTransform(
                "time scale must be non-zero".into(),
            ));
        }
        let mut m = self.mat.clone();
        let t = m.rows() - 1;
        for v in m.row_mut(t) {
            *v *= factor;
        }
        SpaceTimeTransform::new(m)
    }

    /// Returns this transform with the time row replaced, for fine-grained
    /// per-axis pipelining control (Figure 3 changes individual entries of
    /// the lowest row).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidTransform`] if the row has the wrong
    /// length or makes the transform singular.
    pub fn with_time_row(&self, row: &[i64]) -> Result<SpaceTimeTransform, CompileError> {
        if row.len() != self.mat.cols() {
            return Err(CompileError::InvalidTransform(format!(
                "time row must have {} entries",
                self.mat.cols()
            )));
        }
        let mut m = self.mat.clone();
        let t = m.rows() - 1;
        m.row_mut(t).copy_from_slice(row);
        SpaceTimeTransform::new(m)
    }

    /// The rank of the iteration space (and of the space-time vector).
    pub fn rank(&self) -> usize {
        self.mat.rows()
    }

    /// Number of spatial dimensions (`rank - 1`).
    pub fn space_dims(&self) -> usize {
        self.mat.rows() - 1
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &IntMat {
        &self.mat
    }

    /// The exact inverse.
    pub fn inverse(&self) -> &RatMat {
        &self.inv
    }

    /// Maps an iteration point to `(space..., time)`.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.rank()`.
    pub fn apply(&self, point: &[i64]) -> Vec<i64> {
        self.mat.mul_vec(point)
    }

    /// Maps an iteration point to `(space..., time)` into a reused buffer,
    /// allocating nothing — the per-point workhorse of the fold and the
    /// scheduled executor.
    pub fn apply_into(&self, point: &[i64], out: &mut Vec<i64>) {
        out.clear();
        for r in 0..self.mat.rows() {
            out.push(self.mat.row(r).iter().zip(point).map(|(a, b)| a * b).sum());
        }
    }

    /// The spatial part of the image of `point`.
    pub fn space_of(&self, point: &[i64]) -> Vec<i64> {
        let mut st = self.apply(point);
        st.pop();
        st
    }

    /// The time step of `point` — a single dot product with the time row,
    /// allocating nothing.
    pub fn time_of(&self, point: &[i64]) -> i64 {
        let t = self.mat.rows() - 1;
        self.mat.row(t).iter().zip(point).map(|(a, b)| a * b).sum()
    }

    /// Recovers the iteration point from a space-time coordinate, or `None`
    /// if the coordinate has no integer preimage (the "no tensor iteration
    /// here this cycle" case a PE's IO request generator must detect,
    /// Figure 11).
    pub fn invert(&self, spacetime: &[i64]) -> Option<Vec<i64>> {
        self.inv.mul_int_vec(spacetime)
    }

    /// The time component of `T·d` for a difference vector `d`: the number
    /// of pipeline registers on the corresponding PE-to-PE connection
    /// (Figure 3).
    pub fn time_delta(&self, diff: &[i64]) -> i64 {
        self.time_of(diff)
    }

    /// The spatial component of `T·d` for a difference vector `d`.
    pub fn space_delta(&self, diff: &[i64]) -> Vec<i64> {
        self.space_of(diff)
    }
}

impl fmt::Debug for SpaceTimeTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpaceTimeTransform({:?})", self.mat)
    }
}

impl fmt::Display for SpaceTimeTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_stationary_mapping() {
        let t = SpaceTimeTransform::output_stationary();
        assert_eq!(t.apply(&[1, 2, 3]), vec![1, 2, 6]);
        assert_eq!(t.space_of(&[1, 2, 3]), vec![1, 2]);
        assert_eq!(t.time_of(&[1, 2, 3]), 6);
        // Output-stationary: c (diff (0,0,1)) stays in place, 1 cycle/step.
        assert_eq!(t.space_delta(&[0, 0, 1]), vec![0, 0]);
        assert_eq!(t.time_delta(&[0, 0, 1]), 1);
    }

    #[test]
    fn input_stationary_mapping() {
        let t = SpaceTimeTransform::input_stationary();
        // b (diff (1,0,0)) is stationary: B values indexed by (k, j).
        assert_eq!(t.space_delta(&[1, 0, 0]), vec![0, 0]);
        // c (diff (0,0,1)) travels down x one PE per cycle (Figure 4's
        // vertical accumulation).
        assert_eq!(t.space_delta(&[0, 0, 1]), vec![1, 0]);
        assert_eq!(t.time_delta(&[0, 0, 1]), 1);
    }

    #[test]
    fn hexagonal_spreads_all_iterators() {
        let t = SpaceTimeTransform::hexagonal();
        // All three unit difference vectors move spatially: nothing is
        // stationary in the hexagonal array.
        for d in [[1, 0, 0], [0, 1, 0], [0, 0, 1]] {
            assert_ne!(
                t.space_delta(&d),
                vec![0, 0],
                "{d:?} unexpectedly stationary"
            );
        }
    }

    #[test]
    fn time_scale_multiplies_registers() {
        let t = SpaceTimeTransform::output_stationary();
        let t2 = t.with_time_scale(2).unwrap();
        assert_eq!(t2.time_delta(&[0, 0, 1]), 2);
        assert_eq!(t2.space_delta(&[0, 0, 1]), vec![0, 0]);
        assert!(t.with_time_scale(0).is_err());
    }

    #[test]
    fn time_row_replacement() {
        let t = SpaceTimeTransform::output_stationary();
        let t2 = t.with_time_row(&[2, 1, 1]).unwrap();
        // a (diff (0,1,0)) now has 1 register; b (diff (1,0,0)) has 2.
        assert_eq!(t2.time_delta(&[0, 1, 0]), 1);
        assert_eq!(t2.time_delta(&[1, 0, 0]), 2);
        assert!(t.with_time_row(&[1, 1]).is_err());
        // A time row making T singular is rejected.
        assert!(t.with_time_row(&[1, 0, 0]).is_err());
    }

    #[test]
    fn apply_into_matches_apply() {
        let mut out = Vec::new();
        for t in [
            SpaceTimeTransform::output_stationary(),
            SpaceTimeTransform::hexagonal(),
            SpaceTimeTransform::output_stationary()
                .with_time_scale(3)
                .unwrap(),
        ] {
            for p in [[0, 0, 0], [1, 2, 3], [-2, 5, 1]] {
                t.apply_into(&p, &mut out);
                assert_eq!(out, t.apply(&p));
                assert_eq!(t.time_of(&p), *out.last().unwrap());
                assert_eq!(t.space_of(&p), out[..2]);
            }
        }
    }

    #[test]
    fn invert_round_trip() {
        for t in [
            SpaceTimeTransform::output_stationary(),
            SpaceTimeTransform::input_stationary(),
            SpaceTimeTransform::hexagonal(),
        ] {
            for p in [[0, 0, 0], [1, 2, 3], [3, 1, 2]] {
                let st = t.apply(&p);
                assert_eq!(t.invert(&st), Some(p.to_vec()));
            }
        }
    }

    #[test]
    fn invert_detects_fractional() {
        let t = SpaceTimeTransform::output_stationary()
            .with_time_scale(2)
            .unwrap();
        // With time doubled, odd time steps have no integer preimage.
        let st = t.apply(&[1, 1, 1]); // t = 6
        assert!(t.invert(&st).is_some());
        assert!(t.invert(&[1, 1, 5]).is_none());
    }

    #[test]
    fn singular_rejected() {
        let m = IntMat::from_rows(&[&[1, 0, 0], &[1, 0, 0], &[1, 1, 1]]);
        assert!(matches!(
            SpaceTimeTransform::new(m),
            Err(CompileError::InvalidTransform(_))
        ));
    }
}
