//! Allocation-free candidate scoring for the dataflow search.
//!
//! The search of [`crate::explore`] only needs a candidate's *structure
//! key* — PE count, moving/stationary wire counts, IO port count, and
//! latency — yet the naive path materializes a full
//! [`SpatialArray`] per candidate: a fresh `Vec<i64>` per point from
//! [`SpaceTimeTransform::apply`], `HashSet<Vec<i64>>` collision sets, and
//! a rational matrix inverse per transform. This module is the compiler
//! mid-end analogue of the simulator's skip-ahead engine (PR 4): the
//! iteration space is flattened **once per explore** into a row-major
//! `i64` coordinate matrix plus flat connection/IO tables
//! ([`FoldScorer`]), and each candidate is then scored with integer dot
//! products into reusable per-worker buffers ([`FoldScratch`]) — zero
//! steady-state allocations. Space-time and spatial coordinates are
//! packed into `u64` keys (each component biased into an unsigned field
//! sized from the per-axis coordinate bounds) and deduplicated in
//! generation-stamped open-addressing tables, so collision detection and
//! PE identification never hash a `Vec<i64>`.
//!
//! When a fold cannot be packed into 64-bit keys (very wide coordinates
//! or huge spaces) the scorer reports `None` and callers fall back to the
//! full fold, which is always correct. The scorer is proven key-equal to
//! both [`SpatialArray::from_iterspace`] and the retained
//! [`crate::spacetime::reference`] fold by
//! `crates/core/tests/fold_equivalence.rs`.

use crate::error::CompileError;
use crate::func::Functionality;
use crate::iterspace::{IoDir, IterationSpace};
use crate::spacetime::SpatialArray;
use crate::transform::SpaceTimeTransform;

/// The structural fingerprint of a folded array — exactly the fields the
/// dataflow search ranks and deduplicates on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StructureSummary {
    /// PEs in the folded array.
    pub num_pes: usize,
    /// Inter-PE (moving) wires.
    pub moving_conns: usize,
    /// Stationary self-connections.
    pub stationary_conns: usize,
    /// Regfile ports required.
    pub io_ports: usize,
    /// Latency in time steps.
    pub time_steps: i64,
}

/// Derives the [`StructureSummary`] of a fully materialized array (the
/// slow-path equivalent of [`FoldScorer::score`]).
pub fn summarize_array(arr: &SpatialArray) -> StructureSummary {
    let moving = arr.conns().iter().filter(|c| !c.is_stationary()).count();
    StructureSummary {
        num_pes: arr.num_pes(),
        moving_conns: moving,
        stationary_conns: arr.conns().len() - moving,
        io_ports: arr.io_ports().len(),
        time_steps: arr.total_time_steps(),
    }
}

/// Per-stage candidate accounting for one dataflow search: how many of
/// the `(2·max_coeff+1)^(rank²)` enumerated codes each filter stage
/// consumed. Counters are plain `u64` adds on paths that already branch,
/// so the search's zero-steady-state-allocation property is untouched.
///
/// The stages form a partition, checked by [`ExploreFunnel::check`]:
///
/// * every decoded candidate lands in exactly one **terminal** bucket —
///   `causality_rejected + singular + collision_rejected + scored
///   == decoded`;
/// * every scored candidate lands in exactly one **outcome** bucket —
///   `over_max_pes + dedup_collisions + survivors == scored`.
///
/// `pack_fallback`, `analytic_scored`, and `analytic_rejected` are
/// informational (subsets of the partitioned buckets recording *which
/// tier* did the work — the full fold, the packed fast path, or the
/// closed-form analytical tier) and participate in neither sum; `check`
/// holds them to their subset relations instead. The `cache_hits` /
/// `cache_misses` / `coalesced` counters are likewise informational:
/// they account for the design-cache layer *around* the search (PR 10)
/// and stay zero on every uncached path, so funnel partitions remain
/// byte-identical whether a result was computed or served. Shard funnels merge by
/// field-wise addition; the parallel merge then demotes shard-local
/// survivors that lose global deduplication from `survivors` to
/// `dedup_collisions`, so the funnel of a parallel search is
/// byte-identical to the serial one.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreFunnel {
    /// Candidate codes decoded from the mixed-radix enumeration. Equals
    /// the full search-space size `(2·max_coeff+1)^(rank²)` after a
    /// complete sweep.
    pub decoded: u64,
    /// Rejected by the causality prefilter: some recurrence fails to move
    /// strictly forward in time (`Δt ≤ 0`).
    pub causality_rejected: u64,
    /// Rejected because the transform matrix is singular.
    pub singular: u64,
    /// Scored via the full `SpatialArray` fold because the packed-`u64`
    /// fast path could not represent the coordinates. Informational —
    /// these candidates still land in `collision_rejected`, `singular`,
    /// or `scored`.
    pub pack_fallback: u64,
    /// Candidates whose [`StructureSummary`] came from the closed-form
    /// analytical tier ([`crate::analytic::AnalyticScorer`]) instead of a
    /// lattice fold. Informational — a subset of `scored`.
    pub analytic_scored: u64,
    /// Analytically scored candidates rejected by the PE bound, i.e. the
    /// candidates the search disposed of without ever folding a lattice
    /// point. Informational — a subset of both `analytic_scored` and
    /// `over_max_pes`.
    pub analytic_rejected: u64,
    /// Rejected because two iteration points collide in space-time.
    pub collision_rejected: u64,
    /// Valid candidates that produced a structure summary.
    pub scored: u64,
    /// Scored candidates rejected by the [`ExploreOptions::max_pes`]
    /// bound.
    ///
    /// [`ExploreOptions::max_pes`]: crate::explore::ExploreOptions::max_pes
    pub over_max_pes: u64,
    /// Scored candidates whose structure key was already claimed by a
    /// lower-code candidate (local dedup plus parallel-merge demotions).
    pub dedup_collisions: u64,
    /// Distinct structures that survived deduplication.
    pub survivors: u64,
    /// Survivors actually kept after ranking and truncation to
    /// [`ExploreOptions::keep`] — the ones a caller would materialize.
    ///
    /// [`ExploreOptions::keep`]: crate::explore::ExploreOptions::keep
    pub materialized: u64,
    /// Queries answered from the design cache (memory or durable tier)
    /// without running the scan. Informational, set by the cache layer —
    /// the search itself always leaves it zero, and a cache hit carries
    /// the *original* computation's partition counters unchanged.
    pub cache_hits: u64,
    /// Queries that missed the design cache and ran the scan (the cache
    /// layer's accounting of this very computation). Informational.
    pub cache_misses: u64,
    /// Queries that piggybacked on an identical in-flight computation
    /// (single-flight coalescing) instead of scanning or reading a
    /// stored entry. Informational — coalesced queries also count as
    /// `cache_hits`.
    pub coalesced: u64,
}

impl ExploreFunnel {
    /// Field-wise accumulation (shard → global), saturating on overflow.
    pub fn merge(&mut self, o: &ExploreFunnel) {
        self.decoded = self.decoded.saturating_add(o.decoded);
        self.causality_rejected = self.causality_rejected.saturating_add(o.causality_rejected);
        self.singular = self.singular.saturating_add(o.singular);
        self.pack_fallback = self.pack_fallback.saturating_add(o.pack_fallback);
        self.analytic_scored = self.analytic_scored.saturating_add(o.analytic_scored);
        self.analytic_rejected = self.analytic_rejected.saturating_add(o.analytic_rejected);
        self.collision_rejected = self.collision_rejected.saturating_add(o.collision_rejected);
        self.scored = self.scored.saturating_add(o.scored);
        self.over_max_pes = self.over_max_pes.saturating_add(o.over_max_pes);
        self.dedup_collisions = self.dedup_collisions.saturating_add(o.dedup_collisions);
        self.survivors = self.survivors.saturating_add(o.survivors);
        self.materialized = self.materialized.saturating_add(o.materialized);
        self.cache_hits = self.cache_hits.saturating_add(o.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(o.cache_misses);
        self.coalesced = self.coalesced.saturating_add(o.coalesced);
    }

    /// Verifies the partition invariants, returning the first violated
    /// equation as `Err` (for test assertions and the profile sentinel).
    ///
    /// # Errors
    ///
    /// A static description of the violated invariant.
    pub fn check(&self) -> Result<(), &'static str> {
        let terminal = self
            .causality_rejected
            .saturating_add(self.singular)
            .saturating_add(self.collision_rejected)
            .saturating_add(self.scored);
        if terminal != self.decoded {
            return Err("terminal buckets do not sum to decoded");
        }
        let outcomes = self
            .over_max_pes
            .saturating_add(self.dedup_collisions)
            .saturating_add(self.survivors);
        if outcomes != self.scored {
            return Err("outcome buckets do not sum to scored");
        }
        if self.materialized > self.survivors {
            return Err("materialized exceeds survivors");
        }
        if self.analytic_scored > self.scored {
            return Err("analytic_scored exceeds scored");
        }
        if self.analytic_rejected > self.analytic_scored {
            return Err("analytic_rejected exceeds analytic_scored");
        }
        if self.analytic_rejected > self.over_max_pes {
            return Err("analytic_rejected exceeds over_max_pes");
        }
        if self.coalesced > self.cache_hits {
            return Err("coalesced exceeds cache_hits");
        }
        Ok(())
    }
}

/// A generation-stamped open-addressing `u64` set/map used as per-candidate
/// scratch: `begin` logically clears it in O(1) by bumping the generation,
/// so scoring millions of candidates never re-zeros memory.
#[derive(Clone, Debug)]
pub(crate) struct ScratchTable {
    keys: Vec<u64>,
    vals: Vec<u32>,
    gens: Vec<u32>,
    mask: usize,
    gen: u32,
}

impl ScratchTable {
    /// A table able to hold `n` entries at ≤ 50% load.
    pub(crate) fn with_capacity(n: usize) -> ScratchTable {
        let cap = (n.max(1) * 2).next_power_of_two().max(8);
        ScratchTable {
            keys: vec![0; cap],
            vals: vec![0; cap],
            gens: vec![0; cap],
            mask: cap - 1,
            gen: 0,
        }
    }

    /// Starts a fresh logical table (O(1) amortized).
    pub(crate) fn begin(&mut self) {
        if self.gen == u32::MAX {
            self.gens.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing spreads packed (low-entropy) keys well.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Inserts `key → val`; returns the existing value if the key was
    /// already present this generation (and leaves it unchanged).
    #[inline]
    pub(crate) fn insert(&mut self, key: u64, val: u32) -> Option<u32> {
        let mut slot = self.slot_of(key);
        loop {
            if self.gens[slot] != self.gen {
                self.gens[slot] = self.gen;
                self.keys[slot] = key;
                self.vals[slot] = val;
                return None;
            }
            if self.keys[slot] == key {
                return Some(self.vals[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

/// Computes the per-component packing layout for a candidate transform:
/// `offsets[i]` biases component `i` into `0..=2*offsets[i]` and
/// `widths[i]` is its bit width. Returns `None` when the packed key would
/// not fit in 64 bits (callers fall back to the full fold) or when any
/// bound overflows `i64` — which also certifies that every dot product
/// the fold performs fits in `i64`.
pub(crate) fn packing_layout(
    rows: &[i64],
    rank: usize,
    axis_abs: &[i64],
    offsets: &mut [i64],
    widths: &mut [u32],
) -> Option<()> {
    let mut total_bits = 0u32;
    for i in 0..rank {
        let mut bound: i64 = 0;
        for c in 0..rank {
            bound =
                bound.checked_add(rows[i * rank + c].checked_abs()?.checked_mul(axis_abs[c])?)?;
        }
        let span = (bound as u64).checked_mul(2)?; // values live in 0..=span
        let bits = (64 - span.leading_zeros()).max(1);
        offsets[i] = bound;
        widths[i] = bits;
        total_bits += bits;
    }
    if total_bits > 64 {
        return None;
    }
    Some(())
}

/// Exact determinant of a flat row-major `n × n` matrix via the Bareiss
/// fraction-free algorithm, into a caller-provided `i128` buffer (the
/// allocation-free twin of `IntMat::det`).
pub(crate) fn det_flat(rows: &[i64], n: usize, buf: &mut [i128]) -> i64 {
    debug_assert_eq!(rows.len(), n * n);
    debug_assert!(buf.len() >= n * n);
    for (b, &v) in buf.iter_mut().zip(rows) {
        *b = v as i128;
    }
    let m = buf;
    let mut sign = 1i128;
    let mut prev = 1i128;
    for k in 0..n.saturating_sub(1) {
        if m[k * n + k] == 0 {
            let swap = (k + 1..n).find(|&r| m[r * n + k] != 0);
            match swap {
                Some(r) => {
                    for c in 0..n {
                        m.swap(k * n + c, r * n + c);
                    }
                    sign = -sign;
                }
                None => return 0,
            }
        }
        for i in k + 1..n {
            for j in k + 1..n {
                m[i * n + j] = (m[i * n + j] * m[k * n + k] - m[i * n + k] * m[k * n + j]) / prev;
            }
            m[i * n + k] = 0;
        }
        prev = m[k * n + k];
    }
    (sign * m[n * n - 1]) as i64
}

/// Per-worker reusable scratch for [`FoldScorer::score_rows`]: every
/// buffer is sized once from the scorer and reused across candidates, so
/// steady-state scoring performs no allocations.
#[derive(Clone, Debug)]
pub struct FoldScratch {
    st: Vec<i64>,
    offsets: Vec<i64>,
    widths: Vec<u32>,
    point_pe: Vec<u32>,
    diff_moving: Vec<bool>,
    st_table: ScratchTable,
    pe_table: ScratchTable,
    conn_table: ScratchTable,
    io_table: ScratchTable,
}

impl FoldScratch {
    /// Scratch sized for one scorer.
    pub fn for_scorer(s: &FoldScorer) -> FoldScratch {
        FoldScratch {
            st: vec![0; s.rank],
            offsets: vec![0; s.rank],
            widths: vec![0; s.rank],
            point_pe: vec![0; s.n_points],
            diff_moving: vec![false; s.conn_diffs.len()],
            st_table: ScratchTable::with_capacity(s.n_points),
            pe_table: ScratchTable::with_capacity(s.n_points),
            conn_table: ScratchTable::with_capacity(s.conn_var.len()),
            io_table: ScratchTable::with_capacity(s.io_point.len()),
        }
    }
}

/// One distinct recurrence difference vector, with a representative
/// variable name for causality errors.
#[derive(Clone, Debug)]
struct ConnDiff {
    var_name: String,
    diff: Vec<i64>,
}

/// The flattened, read-only image of an iteration space that candidate
/// scoring runs against: point coordinates as one row-major `i64` matrix,
/// connections and IO requests as parallel index arrays.
#[derive(Clone, Debug)]
pub struct FoldScorer {
    rank: usize,
    n_points: usize,
    /// Row-major `n_points × rank` point coordinates.
    coords: Vec<i64>,
    /// Per-axis bound on |coordinate|, for packed-key sizing.
    axis_abs: Vec<i64>,
    /// Distinct connection difference vectors, in first-occurrence order.
    conn_diffs: Vec<ConnDiff>,
    /// Per connection: carried variable, endpoints, and diff index.
    conn_var: Vec<u32>,
    conn_src: Vec<u32>,
    conn_dst: Vec<u32>,
    conn_diff_ix: Vec<u32>,
    /// Per IO connection: requesting point and `(tensor, dir)` group.
    io_point: Vec<u32>,
    io_group: Vec<u32>,
    /// Whether conn/io keys pack into `u64` (false forces the fallback).
    packable: bool,
}

impl FoldScorer {
    /// Flattens an iteration space (and its functionality) into the
    /// scorer's SoA form. Done once per explore; candidates then score
    /// against it allocation-free.
    pub fn new(is: &IterationSpace, func: &Functionality) -> FoldScorer {
        let rank = is.bounds().rank();
        let n_points = is.num_points();
        let mut coords = Vec::with_capacity(n_points * rank);
        for pid in 0..n_points {
            coords.extend_from_slice(is.point(crate::iterspace::PointId(pid)).coords());
        }
        let axis_abs: Vec<i64> = (0..rank).map(|d| is.bounds().abs_coord_bound(d)).collect();

        let mut conn_diffs: Vec<ConnDiff> = Vec::new();
        let mut conn_var = Vec::with_capacity(is.conns().len());
        let mut conn_src = Vec::with_capacity(is.conns().len());
        let mut conn_dst = Vec::with_capacity(is.conns().len());
        let mut conn_diff_ix = Vec::with_capacity(is.conns().len());
        for c in is.conns() {
            let ix = match conn_diffs.iter().position(|d| d.diff == c.diff) {
                Some(ix) => ix,
                None => {
                    conn_diffs.push(ConnDiff {
                        var_name: func.var_name(c.var).to_string(),
                        diff: c.diff.clone(),
                    });
                    conn_diffs.len() - 1
                }
            };
            conn_var.push(c.var.0 as u32);
            conn_src.push(c.src.0 as u32);
            conn_dst.push(c.dst.0 as u32);
            conn_diff_ix.push(ix as u32);
        }

        let mut io_point = Vec::with_capacity(is.io_conns().len());
        let mut io_group = Vec::with_capacity(is.io_conns().len());
        for io in is.io_conns() {
            io_point.push(io.point.0 as u32);
            io_group.push((io.tensor.0 * 2 + usize::from(io.dir == IoDir::Write)) as u32);
        }

        // Conn keys pack as ((var * P) + src_pe) * P + dst_pe and IO keys
        // as group * P + pe, with P = n_points (PE ids are < n_points).
        let p = n_points as u64;
        let n_vars = func.num_vars() as u64;
        let max_group = io_group.iter().max().copied().unwrap_or(0) as u64;
        let packable = n_points <= u32::MAX as usize
            && n_vars
                .max(1)
                .checked_mul(p.max(1))
                .and_then(|x| x.checked_mul(p.max(1)))
                .is_some()
            && (max_group + 1).checked_mul(p.max(1)).is_some();

        FoldScorer {
            rank,
            n_points,
            coords,
            axis_abs,
            conn_diffs,
            conn_var,
            conn_src,
            conn_dst,
            conn_diff_ix,
            io_point,
            io_group,
            packable,
        }
    }

    /// The iteration rank candidates must match.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Scores a candidate transform. `None` means the fold cannot be
    /// packed into 64-bit keys — fall back to
    /// [`SpatialArray::from_iterspace`].
    pub fn score(
        &self,
        t: &SpaceTimeTransform,
        scratch: &mut FoldScratch,
    ) -> Option<Result<StructureSummary, CompileError>> {
        assert_eq!(t.rank(), self.rank, "transform rank mismatch");
        let m = t.matrix();
        let mut rows = Vec::with_capacity(self.rank * self.rank);
        for r in 0..self.rank {
            rows.extend_from_slice(m.row(r));
        }
        self.score_rows(&rows, scratch)
    }

    /// Scores a candidate from its flat row-major matrix (which must be
    /// invertible — the search checks the determinant first). Mirrors
    /// [`SpatialArray::from_iterspace`] exactly: collisions are detected
    /// in point order, then causality in connection order; `Ok` summaries
    /// are key-equal to the materialized array's.
    pub fn score_rows(
        &self,
        rows: &[i64],
        scratch: &mut FoldScratch,
    ) -> Option<Result<StructureSummary, CompileError>> {
        let rank = self.rank;
        debug_assert_eq!(rows.len(), rank * rank);
        if !self.packable {
            return None;
        }
        packing_layout(
            rows,
            rank,
            &self.axis_abs,
            &mut scratch.offsets,
            &mut scratch.widths,
        )?;

        // Fold every point: packed space-time key for collision detection,
        // packed spatial prefix for PE identity.
        scratch.st_table.begin();
        scratch.pe_table.begin();
        let time_width = scratch.widths[rank - 1];
        let mut num_pes = 0u32;
        let mut tmin = i64::MAX;
        let mut tmax = i64::MIN;
        for p in 0..self.n_points {
            let pc = &self.coords[p * rank..(p + 1) * rank];
            let mut key = 0u64;
            match rank {
                // Fully unrolled dot-product lanes for the common ranks.
                // The arithmetic is integer — exact and associative — so
                // unrolling is trivially result-identical to the generic
                // loop below; the match arm is loop-invariant, so LLVM
                // unswitches it out of the point loop.
                3 => {
                    let (x, y, z) = (pc[0], pc[1], pc[2]);
                    let s0 = rows[0] * x + rows[1] * y + rows[2] * z;
                    let s1 = rows[3] * x + rows[4] * y + rows[5] * z;
                    let s2 = rows[6] * x + rows[7] * y + rows[8] * z;
                    scratch.st[0] = s0;
                    scratch.st[1] = s1;
                    scratch.st[2] = s2;
                    key = (s0 + scratch.offsets[0]) as u64;
                    key = (key << scratch.widths[1]) | (s1 + scratch.offsets[1]) as u64;
                    key = (key << scratch.widths[2]) | (s2 + scratch.offsets[2]) as u64;
                }
                4 => {
                    let (x, y, z, w) = (pc[0], pc[1], pc[2], pc[3]);
                    let s0 = rows[0] * x + rows[1] * y + rows[2] * z + rows[3] * w;
                    let s1 = rows[4] * x + rows[5] * y + rows[6] * z + rows[7] * w;
                    let s2 = rows[8] * x + rows[9] * y + rows[10] * z + rows[11] * w;
                    let s3 = rows[12] * x + rows[13] * y + rows[14] * z + rows[15] * w;
                    scratch.st[0] = s0;
                    scratch.st[1] = s1;
                    scratch.st[2] = s2;
                    scratch.st[3] = s3;
                    key = (s0 + scratch.offsets[0]) as u64;
                    key = (key << scratch.widths[1]) | (s1 + scratch.offsets[1]) as u64;
                    key = (key << scratch.widths[2]) | (s2 + scratch.offsets[2]) as u64;
                    key = (key << scratch.widths[3]) | (s3 + scratch.offsets[3]) as u64;
                }
                _ => {
                    for i in 0..rank {
                        let mut acc = 0i64;
                        for (c, &coef) in rows[i * rank..(i + 1) * rank].iter().enumerate() {
                            acc += coef * pc[c];
                        }
                        scratch.st[i] = acc;
                        key = (key << scratch.widths[i]) | (acc + scratch.offsets[i]) as u64;
                    }
                }
            }
            if scratch.st_table.insert(key, 0).is_some() {
                return Some(Err(CompileError::SpaceTimeCollision {
                    coord: scratch.st.clone(),
                }));
            }
            let time = scratch.st[rank - 1];
            tmin = tmin.min(time);
            tmax = tmax.max(time);
            let space_key = key >> time_width;
            let pe = match scratch.pe_table.insert(space_key, num_pes) {
                Some(existing) => existing,
                None => {
                    num_pes += 1;
                    num_pes - 1
                }
            };
            scratch.point_pe[p] = pe;
        }

        // Causality per distinct difference vector (all connections
        // sharing a diff have the same Δt, so first-occurrence order is
        // connection order), caching the moving/stationary split.
        let trow = &rows[(rank - 1) * rank..];
        for (ix, cd) in self.conn_diffs.iter().enumerate() {
            let dt: i64 = trow.iter().zip(&cd.diff).map(|(a, b)| a * b).sum();
            if dt < 0 {
                let mut delta: Vec<i64> = (0..rank - 1)
                    .map(|i| {
                        rows[i * rank..(i + 1) * rank]
                            .iter()
                            .zip(&cd.diff)
                            .map(|(a, b)| a * b)
                            .sum()
                    })
                    .collect();
                delta.push(dt);
                return Some(Err(CompileError::CausalityViolation {
                    var: cd.var_name.clone(),
                    delta,
                }));
            }
            scratch.diff_moving[ix] = (0..rank - 1).any(|i| {
                rows[i * rank..(i + 1) * rank]
                    .iter()
                    .zip(&cd.diff)
                    .map(|(a, b)| a * b)
                    .sum::<i64>()
                    != 0
            });
        }

        // Distinct physical wires: (var, src_pe, dst_pe) triples.
        scratch.conn_table.begin();
        let p = self.n_points as u64;
        let mut moving = 0usize;
        let mut stationary = 0usize;
        for j in 0..self.conn_var.len() {
            let src = scratch.point_pe[self.conn_src[j] as usize] as u64;
            let dst = scratch.point_pe[self.conn_dst[j] as usize] as u64;
            let key = (self.conn_var[j] as u64 * p + src) * p + dst;
            if scratch.conn_table.insert(key, 0).is_none() {
                if scratch.diff_moving[self.conn_diff_ix[j] as usize] {
                    moving += 1;
                } else {
                    stationary += 1;
                }
            }
        }

        // Distinct IO ports: (tensor, dir, pe) triples.
        scratch.io_table.begin();
        let mut io_ports = 0usize;
        for k in 0..self.io_point.len() {
            let pe = scratch.point_pe[self.io_point[k] as usize] as u64;
            let key = self.io_group[k] as u64 * p + pe;
            if scratch.io_table.insert(key, 0).is_none() {
                io_ports += 1;
            }
        }

        Some(Ok(StructureSummary {
            num_pes: num_pes as usize,
            moving_conns: moving,
            stationary_conns: stationary,
            io_ports,
            time_steps: if tmin <= tmax { tmax - tmin + 1 } else { 1 },
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Bounds;
    use crate::spacetime::reference;

    fn matmul_scorer(n: usize) -> (Functionality, IterationSpace, FoldScorer) {
        let f = Functionality::matmul(n, n, n);
        let is = IterationSpace::elaborate(&f, &Bounds::from_extents(&[n, n, n])).unwrap();
        let scorer = FoldScorer::new(&is, &f);
        (f, is, scorer)
    }

    #[test]
    fn scorer_matches_materialized_gallery() {
        let (f, is, scorer) = matmul_scorer(4);
        let mut scratch = FoldScratch::for_scorer(&scorer);
        for t in [
            SpaceTimeTransform::output_stationary(),
            SpaceTimeTransform::input_stationary(),
            SpaceTimeTransform::hexagonal(),
            SpaceTimeTransform::output_stationary()
                .with_time_scale(2)
                .unwrap(),
        ] {
            let got = scorer.score(&t, &mut scratch).expect("packable").unwrap();
            let arr = SpatialArray::from_iterspace(&is, &f, &t).unwrap();
            assert_eq!(got, summarize_array(&arr), "{t}");
        }
    }

    #[test]
    fn scorer_reports_causality_like_the_fold() {
        let (f, is, scorer) = matmul_scorer(2);
        let mut scratch = FoldScratch::for_scorer(&scorer);
        let t = SpaceTimeTransform::output_stationary()
            .with_time_row(&[1, 1, -1])
            .unwrap();
        let got = scorer.score(&t, &mut scratch).expect("packable");
        let want = reference::from_iterspace(&is, &f, &t).map(|a| summarize_array(&a));
        assert_eq!(got, want);
        assert!(matches!(got, Err(CompileError::CausalityViolation { .. })));
    }

    #[test]
    fn scratch_tables_survive_many_generations() {
        let mut t = ScratchTable::with_capacity(4);
        for round in 0..10_000u64 {
            t.begin();
            assert_eq!(t.insert(round, 7), None);
            assert_eq!(t.insert(round, 9), Some(7));
            // Keys from earlier generations are gone.
            assert_eq!(t.insert(round.wrapping_sub(1), 1), None);
        }
    }

    #[test]
    fn det_flat_matches_intmat() {
        use stellar_linalg::IntMat;
        let cases: [&[i64]; 4] = [
            &[1, 0, 0, 0, 1, 0, 1, 1, 1],
            &[0, 0, 1, 0, 1, 0, 1, 1, 1],
            &[1, 1, 1, 1, 1, 1, 0, 0, 1],
            &[2, -1, 0, 1, 2, -2, 0, 1, 1],
        ];
        let mut buf = vec![0i128; 9];
        for data in cases {
            let m = IntMat::from_vec(3, 3, data.to_vec());
            assert_eq!(det_flat(data, 3, &mut buf), m.det(), "{data:?}");
        }
    }
}
