//! Rendering functionalities back into the paper's listing notation.
//!
//! `Functionality::to_listing()` produces the Halide-like text of §III-A —
//! for the canned matmul it reproduces Listing 1 of the paper — so that
//! specifications written through the Rust builder API can be reviewed in
//! the notation architects know from the paper.

use std::fmt::Write;

use crate::expr::Expr;
use crate::func::{Functionality, TensorRole};
use crate::index::IdxExpr;

fn idx_str(f: &Functionality, e: IdxExpr) -> String {
    match e {
        IdxExpr::At { idx, offset } => {
            let name = f.index_name(idx);
            match offset.cmp(&0) {
                std::cmp::Ordering::Equal => name.to_string(),
                std::cmp::Ordering::Greater => format!("{name}+{offset}"),
                std::cmp::Ordering::Less => format!("{name}{offset}"),
            }
        }
        IdxExpr::Lower(idx) => format!("{}.lowerBound", f.index_name(idx)),
        IdxExpr::Upper(idx) => format!("{}.upperBound", f.index_name(idx)),
    }
}

fn coords_str(f: &Functionality, coords: &[IdxExpr]) -> String {
    coords
        .iter()
        .map(|&c| idx_str(f, c))
        .collect::<Vec<_>>()
        .join(", ")
}

fn expr_str(f: &Functionality, e: &Expr) -> String {
    match e {
        Expr::Const(v) => {
            if *v == v.trunc() {
                format!("{}", *v as i64)
            } else {
                format!("{v}")
            }
        }
        Expr::Input(t, coords) => format!("{}({})", f.tensor_name(*t), coords_str(f, coords)),
        Expr::Var(v, coords) => format!("{}({})", f.var_name(*v), coords_str(f, coords)),
        Expr::Add(a, b) => format!("{} + {}", expr_str(f, a), expr_str(f, b)),
        Expr::Sub(a, b) => format!("{} - {}", expr_str(f, a), expr_str(f, b)),
        Expr::Mul(a, b) => format!("{} * {}", expr_str(f, a), expr_str(f, b)),
        Expr::Min(a, b) => format!("min({}, {})", expr_str(f, a), expr_str(f, b)),
        Expr::Max(a, b) => format!("max({}, {})", expr_str(f, a), expr_str(f, b)),
        Expr::Select { a, b, if_le, if_gt } => format!(
            "({} <= {} ? {} : {})",
            expr_str(f, a),
            expr_str(f, b),
            expr_str(f, if_le),
            expr_str(f, if_gt)
        ),
    }
}

impl Functionality {
    /// Renders the functionality in the paper's listing notation, with the
    /// `// Inputs` / `// Intermediate calculations` / `// Outputs`
    /// sectioning of Listing 1.
    pub fn to_listing(&self) -> String {
        let mut out = String::new();
        let is_input = |a: &crate::func::FuncAssign| {
            !a.rhs.input_reads().is_empty()
                || (a.rhs.var_reads().is_empty() && a.lhs.iter().any(|c| c.is_pinned()))
        };
        let _ = writeln!(out, "// Inputs");
        for a in self.assigns().iter().filter(|a| is_input(a)) {
            let _ = writeln!(
                out,
                "{}({}) := {}",
                self.var_name(a.var),
                coords_str(self, &a.lhs),
                expr_str(self, &a.rhs)
            );
        }
        let _ = writeln!(out, "// Intermediate calculations");
        for a in self.assigns().iter().filter(|a| !is_input(a)) {
            let _ = writeln!(
                out,
                "{}({}) := {}",
                self.var_name(a.var),
                coords_str(self, &a.lhs),
                expr_str(self, &a.rhs)
            );
        }
        let _ = writeln!(out, "// Outputs");
        for o in self.outputs() {
            let _ = writeln!(
                out,
                "{}({}) := {}",
                self.tensor_name(o.tensor),
                coords_str(self, &o.coords),
                expr_str(self, &o.rhs)
            );
        }
        out
    }

    /// Renders the tensor declarations (`A(i, k): input`, ...).
    pub fn tensor_declarations(&self) -> String {
        let mut out = String::new();
        for t in self.tensors() {
            let axes: Vec<&str> = self
                .tensor_axes(t)
                .iter()
                .map(|&a| self.index_name(a))
                .collect();
            let role = match self.tensor_role(t) {
                TensorRole::Input => "input",
                TensorRole::Output => "output",
            };
            let _ = writeln!(out, "{}({}): {role}", self.tensor_name(t), axes.join(", "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_reproduces_listing_1() {
        let f = Functionality::matmul(4, 4, 4);
        let listing = f.to_listing();
        // The exact lines of the paper's Listing 1 (modulo formatting).
        assert!(listing.contains("a(i, j.lowerBound, k) := A(i, k)"));
        assert!(listing.contains("b(i.lowerBound, j, k) := B(k, j)"));
        assert!(listing.contains("c(i, j, k.lowerBound) := 0"));
        assert!(listing.contains("a(i, j, k) := a(i, j-1, k)"));
        assert!(listing.contains("b(i, j, k) := b(i-1, j, k)"));
        assert!(listing.contains("c(i, j, k) := c(i, j, k-1) + a(i, j-1, k) * b(i-1, j, k)"));
        assert!(listing.contains("C(i, j) := c(i, j, k.upperBound)"));
        // Sectioning comments as in the paper.
        assert!(listing.contains("// Inputs"));
        assert!(listing.contains("// Intermediate calculations"));
        assert!(listing.contains("// Outputs"));
    }

    #[test]
    fn relu_listing_shows_max() {
        let f = Functionality::matmul_relu(2, 2, 2);
        assert!(f
            .to_listing()
            .contains("C(i, j) := max(c(i, j, k.upperBound), 0)"));
    }

    #[test]
    fn tensor_declarations_list_roles() {
        let f = Functionality::matmul(2, 2, 2);
        let d = f.tensor_declarations();
        assert!(d.contains("A(i, k): input"));
        assert!(d.contains("B(k, j): input"));
        assert!(d.contains("C(i, j): output"));
    }

    #[test]
    fn merge_select_listing_shows_select() {
        let f = Functionality::merge_select(2, 2);
        let l = f.to_listing();
        assert!(l.contains("<="), "select renders as a ternary: {l}");
        assert!(l.contains("?"));
    }
}
