//! Applying the space-time transform: from `IterationSpace` to a physical
//! spatial array (§IV-B, Figure 9c).

use std::collections::HashMap;
use std::fmt;

/// Per-tensor, per-direction access orders keyed for the regfile optimizer.
type IoOrderMap = HashMap<(TensorId, IoDir), AccessOrder>;

/// Time-stamped tensor coordinates, accumulated per `(tensor, dir)` while
/// folding IO connections.
type TimedCoords = Vec<(i64, Vec<i64>)>;

use crate::error::CompileError;
use crate::func::{Functionality, TensorId, VarId};
use crate::iterspace::{AssignKind, IoDir, IterationSpace};
use crate::regfile::AccessOrder;
use crate::transform::SpaceTimeTransform;

/// One physical PE of the transformed array: a spatial coordinate onto
/// which one or more iteration points fold (different time steps of the
/// same PE).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Pe {
    /// The PE's spatial coordinates.
    pub coords: Vec<i64>,
    /// Number of iteration points mapped to this PE.
    pub num_points: usize,
    /// Total multiplies this PE performs over the computation.
    pub macs: usize,
}

/// A physical PE-to-PE connection after the transform: the image of one or
/// more `Point2PointConn`s sharing endpoints.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PhysConn {
    /// The variable carried.
    pub var: VarId,
    /// Source PE index.
    pub src_pe: usize,
    /// Destination PE index (may equal `src_pe` for stationary variables).
    pub dst_pe: usize,
    /// Spatial delta (zero vector for stationary variables).
    pub dspace: Vec<i64>,
    /// Pipeline registers along the connection (`Δt`, Figure 3).
    pub registers: i64,
    /// Bundle width (>1 for `OptimisticSkip` connections).
    pub bundle: usize,
    /// How many point-level connections folded into this wire.
    pub multiplicity: usize,
}

impl PhysConn {
    /// Returns `true` if the variable stays within one PE (a stationary
    /// operand or in-place accumulator).
    pub fn is_stationary(&self) -> bool {
        self.dspace.iter().all(|&d| d == 0)
    }
}

/// A physical IO port: one PE's read or write traffic for one tensor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PhysIoPort {
    /// The tensor accessed.
    pub tensor: TensorId,
    /// Read or write.
    pub dir: IoDir,
    /// The PE index.
    pub pe: usize,
    /// Number of accesses over the computation.
    pub accesses: usize,
}

/// The physical spatial array produced by applying a space-time transform
/// to a (possibly pruned) iteration space.
///
/// # Examples
///
/// ```
/// use stellar_core::{Bounds, Functionality, IterationSpace, SpaceTimeTransform, SpatialArray};
///
/// let f = Functionality::matmul(4, 4, 4);
/// let is = IterationSpace::elaborate(&f, &Bounds::from_extents(&[4, 4, 4]))?;
/// let arr = SpatialArray::from_iterspace(&is, &f, &SpaceTimeTransform::output_stationary())?;
/// assert_eq!(arr.num_pes(), 16); // 4x4 grid of output-stationary PEs
/// # Ok::<(), stellar_core::CompileError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SpatialArray {
    transform: SpaceTimeTransform,
    pes: Vec<Pe>,
    conns: Vec<PhysConn>,
    io_ports: Vec<PhysIoPort>,
    io_orders: IoOrderMap,
    time_range: (i64, i64),
}

impl SpatialArray {
    /// Folds an iteration space onto physical space and time.
    ///
    /// Runs on flat SoA buffers: each point's space-time image is computed
    /// with [`SpaceTimeTransform::apply_into`] into one reused buffer and
    /// packed into a `u64` key for collision detection and PE identity —
    /// no per-point `Vec` hashing. When the coordinates are too wide to
    /// pack (see [`crate::fold`]) the fold falls back to the retained
    /// [`reference`] implementation, which is always correct; the two are
    /// proven byte-identical by `crates/core/tests/fold_equivalence.rs`.
    ///
    /// # Errors
    ///
    /// * [`CompileError::SpaceTimeCollision`] if two points map to the same
    ///   space-time coordinate.
    /// * [`CompileError::CausalityViolation`] if any connection would have
    ///   negative `Δt`.
    pub fn from_iterspace(
        is: &IterationSpace,
        func: &Functionality,
        transform: &SpaceTimeTransform,
    ) -> Result<SpatialArray, CompileError> {
        if transform.rank() != is.bounds().rank() {
            return Err(CompileError::InvalidTransform(format!(
                "transform rank {} does not match iteration rank {}",
                transform.rank(),
                is.bounds().rank()
            )));
        }

        let rank = transform.rank();
        let mut rows = Vec::with_capacity(rank * rank);
        for r in 0..rank {
            rows.extend_from_slice(transform.matrix().row(r));
        }
        let axis_abs: Vec<i64> = (0..rank).map(|d| is.bounds().abs_coord_bound(d)).collect();
        let mut offsets = vec![0i64; rank];
        let mut widths = vec![0u32; rank];
        if crate::fold::packing_layout(&rows, rank, &axis_abs, &mut offsets, &mut widths).is_none()
        {
            return reference::from_iterspace(is, func, transform);
        }

        // Map points to PEs, checking space-time collisions via packed
        // keys in open-addressing tables.
        let mut pes: Vec<Pe> = Vec::new();
        let mut point_pe: Vec<usize> = Vec::with_capacity(is.num_points());
        let mut point_time: Vec<i64> = Vec::with_capacity(is.num_points());
        let mut st_table = crate::fold::ScratchTable::with_capacity(is.num_points());
        let mut pe_table = crate::fold::ScratchTable::with_capacity(is.num_points());
        st_table.begin();
        pe_table.begin();
        let mut st: Vec<i64> = Vec::with_capacity(rank);
        let time_width = widths[rank - 1];
        let mut tmin = i64::MAX;
        let mut tmax = i64::MIN;

        for pid in 0..is.num_points() {
            let point = is.point(crate::iterspace::PointId(pid));
            transform.apply_into(point.coords(), &mut st);
            let mut key = 0u64;
            for (i, &v) in st.iter().enumerate() {
                key = (key << widths[i]) | (v + offsets[i]) as u64;
            }
            if st_table.insert(key, 0).is_some() {
                return Err(CompileError::SpaceTimeCollision { coord: st });
            }
            let time = st[rank - 1];
            tmin = tmin.min(time);
            tmax = tmax.max(time);
            let next = pes.len() as u32;
            let pe_id = match pe_table.insert(key >> time_width, next) {
                Some(existing) => existing as usize,
                None => {
                    pes.push(Pe {
                        coords: st[..rank - 1].to_vec(),
                        num_points: 0,
                        macs: 0,
                    });
                    pes.len() - 1
                }
            };
            pes[pe_id].num_points += 1;
            let macs: usize = is
                .assignments(crate::iterspace::PointId(pid))
                .iter()
                .filter(|a| a.kind == AssignKind::Compute)
                .map(|a| func.assigns()[a.source].rhs.num_muls())
                .sum();
            pes[pe_id].macs += macs;
            point_pe.push(pe_id);
            point_time.push(time);
        }

        // Fold connections, checking causality and deduplicating wires.
        let mut conn_map: HashMap<(VarId, usize, usize), PhysConn> = HashMap::new();
        for conn in is.conns() {
            let dt = transform.time_delta(&conn.diff);
            if dt < 0 {
                return Err(CompileError::CausalityViolation {
                    var: func.var_name(conn.var).to_string(),
                    delta: {
                        let mut d = transform.space_delta(&conn.diff);
                        d.push(dt);
                        d
                    },
                });
            }
            let src_pe = point_pe[conn.src.0];
            let dst_pe = point_pe[conn.dst.0];
            let entry = conn_map
                .entry((conn.var, src_pe, dst_pe))
                .or_insert_with(|| PhysConn {
                    var: conn.var,
                    src_pe,
                    dst_pe,
                    dspace: transform.space_delta(&conn.diff),
                    registers: dt,
                    bundle: conn.bundle,
                    multiplicity: 0,
                });
            entry.multiplicity += 1;
            entry.bundle = entry.bundle.max(conn.bundle);
        }
        let mut conns: Vec<PhysConn> = conn_map.into_values().collect();
        conns.sort_by_key(|a| (a.var.0, a.src_pe, a.dst_pe));

        // Fold IO connections into per-PE ports and per-tensor access
        // orders (for the regfile optimizer).
        let mut port_map: HashMap<(TensorId, IoDir, usize), usize> = HashMap::new();
        let mut order_map: HashMap<(TensorId, IoDir), TimedCoords> = HashMap::new();
        for io in is.io_conns() {
            let pe = point_pe[io.point.0];
            *port_map.entry((io.tensor, io.dir, pe)).or_insert(0) += 1;
            order_map
                .entry((io.tensor, io.dir))
                .or_default()
                .push((point_time[io.point.0], io.coords.clone()));
        }
        let mut io_ports: Vec<PhysIoPort> = port_map
            .into_iter()
            .map(|((tensor, dir, pe), accesses)| PhysIoPort {
                tensor,
                dir,
                pe,
                accesses,
            })
            .collect();
        io_ports.sort_by_key(|a| (a.tensor.0, a.pe, a.dir == IoDir::Write));
        let io_orders = order_map
            .into_iter()
            .map(|(k, mut seq)| {
                seq.sort();
                (k, AccessOrder::new(seq))
            })
            .collect();

        Ok(SpatialArray {
            transform: transform.clone(),
            pes,
            conns,
            io_ports,
            io_orders,
            time_range: if tmin <= tmax { (tmin, tmax) } else { (0, 0) },
        })
    }

    /// The transform that produced this array.
    pub fn transform(&self) -> &SpaceTimeTransform {
        &self.transform
    }

    /// The PEs.
    pub fn pes(&self) -> &[Pe] {
        &self.pes
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// The physical connections.
    pub fn conns(&self) -> &[PhysConn] {
        &self.conns
    }

    /// The IO ports.
    pub fn io_ports(&self) -> &[PhysIoPort] {
        &self.io_ports
    }

    /// The `(first, last)` time steps of the computation.
    pub fn time_range(&self) -> (i64, i64) {
        self.time_range
    }

    /// Total time steps (the dense array's latency in cycles).
    pub fn total_time_steps(&self) -> i64 {
        self.time_range.1 - self.time_range.0 + 1
    }

    /// The order in which the array accesses a tensor's elements, for the
    /// regfile optimizer (Figure 13b).
    pub fn access_order(&self, tensor: TensorId, dir: IoDir) -> Option<&AccessOrder> {
        self.io_orders.get(&(tensor, dir))
    }

    /// Total MACs across all PEs.
    pub fn total_macs(&self) -> usize {
        self.pes.iter().map(|p| p.macs).sum()
    }

    /// Connections carrying a given variable.
    pub fn conns_for_var(&self, var: VarId) -> impl Iterator<Item = &PhysConn> + '_ {
        self.conns.iter().filter(move |c| c.var == var)
    }
}

impl fmt::Display for SpatialArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SpatialArray({} PEs, {} conns, {} io ports, {} steps)",
            self.pes.len(),
            self.conns.len(),
            self.io_ports.len(),
            self.total_time_steps()
        )
    }
}

/// The original hash-based fold, retained verbatim as the in-tree
/// equivalence oracle for the flat-buffer [`SpatialArray::from_iterspace`]
/// and the [`crate::fold::FoldScorer`] fast path (the house pattern of the
/// simulation engine's per-cycle references). Also the fallback when a
/// fold's coordinates cannot be packed into 64-bit keys.
pub mod reference {
    use std::collections::{HashMap, HashSet};

    use super::{IoOrderMap, Pe, PhysConn, PhysIoPort, SpatialArray, TimedCoords};
    use crate::error::CompileError;
    use crate::func::{Functionality, TensorId, VarId};
    use crate::iterspace::{AssignKind, IoDir, IterationSpace};
    use crate::regfile::AccessOrder;
    use crate::transform::SpaceTimeTransform;

    /// Folds an iteration space onto physical space and time, hashing
    /// `Vec<i64>` coordinates (the pre-fast-path implementation).
    ///
    /// # Errors
    ///
    /// Same contract as [`SpatialArray::from_iterspace`].
    pub fn from_iterspace(
        is: &IterationSpace,
        func: &Functionality,
        transform: &SpaceTimeTransform,
    ) -> Result<SpatialArray, CompileError> {
        if transform.rank() != is.bounds().rank() {
            return Err(CompileError::InvalidTransform(format!(
                "transform rank {} does not match iteration rank {}",
                transform.rank(),
                is.bounds().rank()
            )));
        }

        // Map points to PEs, checking space-time collisions.
        let mut pe_ids: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut pes: Vec<Pe> = Vec::new();
        let mut point_pe: Vec<usize> = Vec::with_capacity(is.num_points());
        let mut point_time: Vec<i64> = Vec::with_capacity(is.num_points());
        let mut seen_st: HashSet<Vec<i64>> = HashSet::with_capacity(is.num_points());
        let mut tmin = i64::MAX;
        let mut tmax = i64::MIN;

        for pid in 0..is.num_points() {
            let point = is.point(crate::iterspace::PointId(pid));
            let st = transform.apply(point.coords());
            if !seen_st.insert(st.clone()) {
                return Err(CompileError::SpaceTimeCollision { coord: st });
            }
            let (space, time) = (st[..st.len() - 1].to_vec(), st[st.len() - 1]);
            tmin = tmin.min(time);
            tmax = tmax.max(time);
            let pe_id = *pe_ids.entry(space.clone()).or_insert_with(|| {
                pes.push(Pe {
                    coords: space,
                    num_points: 0,
                    macs: 0,
                });
                pes.len() - 1
            });
            pes[pe_id].num_points += 1;
            let macs: usize = is
                .assignments(crate::iterspace::PointId(pid))
                .iter()
                .filter(|a| a.kind == AssignKind::Compute)
                .map(|a| func.assigns()[a.source].rhs.num_muls())
                .sum();
            pes[pe_id].macs += macs;
            point_pe.push(pe_id);
            point_time.push(time);
        }

        // Fold connections, checking causality and deduplicating wires.
        let mut conn_map: HashMap<(VarId, usize, usize), PhysConn> = HashMap::new();
        for conn in is.conns() {
            let dt = transform.time_delta(&conn.diff);
            if dt < 0 {
                return Err(CompileError::CausalityViolation {
                    var: func.var_name(conn.var).to_string(),
                    delta: {
                        let mut d = transform.space_delta(&conn.diff);
                        d.push(dt);
                        d
                    },
                });
            }
            let src_pe = point_pe[conn.src.0];
            let dst_pe = point_pe[conn.dst.0];
            let entry = conn_map
                .entry((conn.var, src_pe, dst_pe))
                .or_insert_with(|| PhysConn {
                    var: conn.var,
                    src_pe,
                    dst_pe,
                    dspace: transform.space_delta(&conn.diff),
                    registers: dt,
                    bundle: conn.bundle,
                    multiplicity: 0,
                });
            entry.multiplicity += 1;
            entry.bundle = entry.bundle.max(conn.bundle);
        }
        let mut conns: Vec<PhysConn> = conn_map.into_values().collect();
        conns.sort_by_key(|a| (a.var.0, a.src_pe, a.dst_pe));

        // Fold IO connections into per-PE ports and per-tensor access
        // orders (for the regfile optimizer).
        let mut port_map: HashMap<(TensorId, IoDir, usize), usize> = HashMap::new();
        let mut order_map: HashMap<(TensorId, IoDir), TimedCoords> = HashMap::new();
        for io in is.io_conns() {
            let pe = point_pe[io.point.0];
            *port_map.entry((io.tensor, io.dir, pe)).or_insert(0) += 1;
            order_map
                .entry((io.tensor, io.dir))
                .or_default()
                .push((point_time[io.point.0], io.coords.clone()));
        }
        let mut io_ports: Vec<PhysIoPort> = port_map
            .into_iter()
            .map(|((tensor, dir, pe), accesses)| PhysIoPort {
                tensor,
                dir,
                pe,
                accesses,
            })
            .collect();
        io_ports.sort_by_key(|a| (a.tensor.0, a.pe, a.dir == IoDir::Write));
        let io_orders: IoOrderMap = order_map
            .into_iter()
            .map(|(k, mut seq)| {
                seq.sort();
                (k, AccessOrder::new(seq))
            })
            .collect();

        Ok(SpatialArray {
            transform: transform.clone(),
            pes,
            conns,
            io_ports,
            io_orders,
            time_range: if tmin <= tmax { (tmin, tmax) } else { (0, 0) },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Bounds;

    fn build(n: usize, t: &SpaceTimeTransform) -> (Functionality, SpatialArray) {
        let f = Functionality::matmul(n, n, n);
        let is = IterationSpace::elaborate(&f, &Bounds::from_extents(&[n, n, n])).unwrap();
        let arr = SpatialArray::from_iterspace(&is, &f, t).unwrap();
        (f, arr)
    }

    #[test]
    fn output_stationary_shape() {
        let (f, arr) = build(4, &SpaceTimeTransform::output_stationary());
        assert_eq!(arr.num_pes(), 16);
        // Each PE computes all 4 k-steps: 4 MACs.
        assert!(arr.pes().iter().all(|pe| pe.macs == 4));
        assert_eq!(arr.total_macs(), 64);
        // c is stationary; a and b move.
        let vars: Vec<VarId> = f.vars().collect();
        assert!(arr.conns_for_var(vars[2]).all(|c| c.is_stationary()));
        assert!(arr.conns_for_var(vars[0]).all(|c| !c.is_stationary()));
        // Time range: t = i + j + k over [0,3]^3 → 0..=9 → 10 steps.
        assert_eq!(arr.total_time_steps(), 10);
    }

    #[test]
    fn input_stationary_shape() {
        let (f, arr) = build(4, &SpaceTimeTransform::input_stationary());
        // x = k, y = j: 16 PEs.
        assert_eq!(arr.num_pes(), 16);
        let vars: Vec<VarId> = f.vars().collect();
        // b (the stationary input) stays put; c travels down x.
        assert!(arr.conns_for_var(vars[1]).all(|c| c.is_stationary()));
        for c in arr.conns_for_var(vars[2]) {
            assert_eq!(c.dspace, vec![1, 0]);
            assert_eq!(c.registers, 1);
        }
    }

    #[test]
    fn hexagonal_is_2d_with_more_pes() {
        let (_, arr) = build(4, &SpaceTimeTransform::hexagonal());
        // x = i - k, y = j - k: coordinates range over [-3, 3]^2 but only
        // feasible combinations appear; more PEs than a 4x4 grid.
        assert!(
            arr.num_pes() > 16,
            "hexagonal array has {} PEs",
            arr.num_pes()
        );
        assert!(arr.pes().iter().all(|pe| pe.coords.len() == 2));
    }

    #[test]
    fn pipelining_scales_registers() {
        let t = SpaceTimeTransform::output_stationary()
            .with_time_scale(2)
            .unwrap();
        let (f, arr) = build(4, &t);
        let vars: Vec<VarId> = f.vars().collect();
        // Doubled time row → 2 registers per a/b hop (Figure 3).
        for c in arr.conns_for_var(vars[0]) {
            assert_eq!(c.registers, 2);
        }
        assert_eq!(arr.total_time_steps(), 19); // t in 0..=18 even steps
    }

    #[test]
    fn collision_detected() {
        // A transform with a non-injective fold: project onto (i, j) with
        // time = k only... make time row equal to a space row to collide.
        let f = Functionality::matmul(2, 2, 2);
        let is = IterationSpace::elaborate(&f, &Bounds::from_extents(&[2, 2, 2])).unwrap();
        // x=i, y=j, t=i+j: all k fold onto the same space-time coordinate.
        // This matrix is singular, so it is rejected at construction —
        // demonstrating that invertibility prevents trivial collisions.
        assert!(SpaceTimeTransform::new(stellar_linalg::IntMat::from_rows(&[
            &[1, 0, 0],
            &[0, 1, 0],
            &[1, 1, 0],
        ]))
        .is_err());
        // An invertible transform over a *folded* bounds can still collide:
        // map two separate tiles onto the same coordinates by using a
        // transform whose image overlaps. x = i mod nothing... Instead we
        // verify the collision check by elaborating with duplicated points:
        // not constructible through the public API, so invertibility plus
        // distinct points guarantees no collision.
        let arr = SpatialArray::from_iterspace(&is, &f, &SpaceTimeTransform::output_stationary());
        assert!(arr.is_ok());
    }

    #[test]
    fn causality_violation_detected() {
        let f = Functionality::matmul(2, 2, 2);
        let is = IterationSpace::elaborate(&f, &Bounds::from_extents(&[2, 2, 2])).unwrap();
        // Time row (1, 1, -1): c's diff (0,0,1) gets Δt = -1.
        let t = SpaceTimeTransform::output_stationary()
            .with_time_row(&[1, 1, -1])
            .unwrap();
        let err = SpatialArray::from_iterspace(&is, &f, &t);
        assert!(matches!(err, Err(CompileError::CausalityViolation { .. })));
    }

    #[test]
    fn fold_inputs_and_outputs_are_send_sync() {
        // The dataflow search folds candidate transforms from parallel
        // worker threads: everything the fold reads or produces must cross
        // thread boundaries, and all scratch state must stay call-local.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpatialArray>();
        assert_send_sync::<Functionality>();
        assert_send_sync::<IterationSpace>();
        assert_send_sync::<SpaceTimeTransform>();
        assert_send_sync::<CompileError>();
    }

    #[test]
    fn access_orders_available() {
        let (f, arr) = build(4, &SpaceTimeTransform::output_stationary());
        let tensors: Vec<TensorId> = f.tensors().collect();
        let a_reads = arr.access_order(tensors[0], IoDir::Read).unwrap();
        assert_eq!(a_reads.len(), 16);
        let c_writes = arr.access_order(tensors[2], IoDir::Write).unwrap();
        assert_eq!(c_writes.len(), 16);
        assert!(arr.access_order(tensors[2], IoDir::Read).is_none());
    }
}
