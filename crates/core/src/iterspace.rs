//! The `IterationSpace` intermediate representation (§IV-B, Figure 9).
//!
//! Elaboration turns a [`Functionality`] plus concrete [`Bounds`] into a set
//! of [`Point`]s — one per tensor iteration — carrying [`Assignment`]s,
//! connected by [`Point2PointConn`]s (data dependencies between points) and
//! [`IOConn`]s (requests to external register files). Subsequent passes
//! prune connections (sparsity, load balancing) and apply the space-time
//! transform.

use std::collections::HashMap;
use std::fmt;

use crate::error::CompileError;
use crate::func::{Functionality, TensorId, VarId};
use crate::index::Bounds;

/// An opaque handle to a [`Point`] within an [`IterationSpace`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PointId(pub(crate) usize);

/// One point of the tensor iteration space: a concrete value of the
/// iteration vector, e.g. `(i=1, j=2, k=3)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Point {
    coords: Vec<i64>,
}

impl Point {
    /// The iteration coordinates.
    pub fn coords(&self) -> &[i64] {
        &self.coords
    }
}

/// What a point's assignment does, summarized for hardware generation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AssignKind {
    /// Initialize a variable to a constant (e.g. `c := 0`).
    Init,
    /// Load a variable from an input tensor.
    Load(TensorId),
    /// Forward a variable from a neighbouring point unchanged.
    Propagate,
    /// Perform arithmetic (the PE's "User-Defined Logic", Figure 11).
    Compute,
}

/// One operation a point must perform: the per-point instantiation of a
/// functionality assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Assignment {
    /// The variable assigned.
    pub var: VarId,
    /// The kind of operation.
    pub kind: AssignKind,
    /// Index of the originating assignment in the functionality.
    pub source: usize,
}

/// A data dependency between two points, carried by a variable
/// (Figure 9a's `Point2PointConn`s).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Point2PointConn {
    /// The variable whose value flows along this connection.
    pub var: VarId,
    /// The producing point.
    pub src: PointId,
    /// The consuming point.
    pub dst: PointId,
    /// The difference vector `dst - src`.
    pub diff: Vec<i64>,
    /// Bundle width: 1 for scalar connections, larger for `OptimisticSkip`
    /// bundles (Figure 5).
    pub bundle: usize,
}

/// The direction of an IO connection, from the spatial array's perspective.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IoDir {
    /// The point reads this tensor element from a register file.
    Read,
    /// The point writes this tensor element to a register file.
    Write,
}

/// An input- or output-request from a point to an external register file
/// (Figure 9a's `IOConn`s).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IOConn {
    /// The tensor being accessed.
    pub tensor: TensorId,
    /// The variable carrying the value inside the array.
    pub var: VarId,
    /// The requesting point.
    pub point: PointId,
    /// Read or write.
    pub dir: IoDir,
    /// The tensor coordinates accessed.
    pub coords: Vec<i64>,
}

/// The elaborated iteration-space IR.
///
/// # Examples
///
/// ```
/// use stellar_core::{Bounds, Functionality, IterationSpace};
///
/// let f = Functionality::matmul(4, 4, 4);
/// let is = IterationSpace::elaborate(&f, &Bounds::from_extents(&[4, 4, 4]))?;
/// assert_eq!(is.num_points(), 64);
/// // Dense matmul: a, b, c each propagate along one axis.
/// assert!(is.conns().len() > 0);
/// # Ok::<(), stellar_core::CompileError>(())
/// ```
#[derive(Clone, Debug)]
pub struct IterationSpace {
    bounds: Bounds,
    points: Vec<Point>,
    ids: HashMap<Vec<i64>, PointId>,
    assigns: Vec<Vec<Assignment>>,
    conns: Vec<Point2PointConn>,
    io_conns: Vec<IOConn>,
}

impl IterationSpace {
    /// Elaborates a functionality over concrete bounds into the baseline
    /// dense IR of Figure 9a.
    ///
    /// # Errors
    ///
    /// Returns an error if the functionality fails validation or has
    /// inconsistent recurrences.
    pub fn elaborate(
        func: &Functionality,
        bounds: &Bounds,
    ) -> Result<IterationSpace, CompileError> {
        func.validate()?;
        if bounds.rank() != func.rank() {
            return Err(CompileError::Malformed(format!(
                "bounds rank {} does not match functionality rank {}",
                bounds.rank(),
                func.rank()
            )));
        }
        let mut points = Vec::with_capacity(bounds.num_points());
        let mut ids = HashMap::with_capacity(bounds.num_points());
        for coords in bounds.iter_points() {
            let id = PointId(points.len());
            ids.insert(coords.clone(), id);
            points.push(Point { coords });
        }
        let mut assigns: Vec<Vec<Assignment>> = vec![Vec::new(); points.len()];
        let mut conns = Vec::new();
        let mut io_conns = Vec::new();

        // Per-variable difference vectors, for generating conns.
        let mut diffs: Vec<Option<Vec<i64>>> = Vec::new();
        for v in func.vars() {
            diffs.push(func.difference_vector(v)?);
        }

        for (pid, point) in points.iter().enumerate() {
            let pid = PointId(pid);
            for (a_idx, a) in func.assigns().iter().enumerate() {
                // Does this assignment apply at this point? Pinned lhs
                // coordinates must match the point exactly.
                let applies = a.lhs.iter().enumerate().all(|(d, c)| {
                    !c.is_pinned() || c.eval(&point.coords, bounds) == point.coords[d]
                });
                if !applies {
                    continue;
                }
                // Note: unpinned recurrences execute at *all* points,
                // including boundaries. At a boundary, the pinned
                // assignment (declared first, executed first) provides the
                // incoming value, and the recurrence's out-of-bounds read
                // falls back to it — this is how `c(i,j,k.lowerBound) := 0`
                // followed by the MAC yields c(i,j,0) = a·b at k = 0.

                let kind = classify(func, a_idx);
                assigns[pid.0].push(Assignment {
                    var: a.var,
                    kind,
                    source: a_idx,
                });

                // Input tensor reads become IOConns. An expression that
                // reads the same element twice (e.g. `Select(A, B, A, B)`)
                // uses one physical port and reuses the value, so identical
                // reads at a point are deduplicated.
                for (t, coords) in a.rhs.input_reads() {
                    let tcoords: Vec<i64> = coords
                        .iter()
                        .map(|c| c.eval(&point.coords, bounds))
                        .collect();
                    let conn = IOConn {
                        tensor: t,
                        var: a.var,
                        point: pid,
                        dir: IoDir::Read,
                        coords: tcoords,
                    };
                    if !io_conns.iter().rev().take(8).any(|c: &IOConn| *c == conn) {
                        io_conns.push(conn);
                    }
                }

                // Self-recurrence reads become Point2PointConns when the
                // source point is in bounds.
                if let Some(d) = &diffs[a.var.0] {
                    let has_self_read = a.rhs.var_reads().iter().any(|(v, _)| *v == a.var);
                    if has_self_read && !d.iter().all(|&x| x == 0) {
                        let src: Vec<i64> =
                            point.coords.iter().zip(d).map(|(p, dd)| p - dd).collect();
                        if let Some(&src_id) = ids.get(&src) {
                            conns.push(Point2PointConn {
                                var: a.var,
                                src: src_id,
                                dst: pid,
                                diff: d.clone(),
                                bundle: 1,
                            });
                        }
                    }
                }
            }

            // Output assignments whose pinned variable reads match this
            // point become write IOConns.
            for o in func.outputs() {
                for (v, vcoords) in o.rhs.var_reads() {
                    let matches = vcoords
                        .iter()
                        .enumerate()
                        .all(|(d, c)| c.eval(&point.coords, bounds) == point.coords[d]);
                    if matches {
                        let tcoords: Vec<i64> = o
                            .coords
                            .iter()
                            .map(|c| c.eval(&point.coords, bounds))
                            .collect();
                        io_conns.push(IOConn {
                            tensor: o.tensor,
                            var: v,
                            point: pid,
                            dir: IoDir::Write,
                            coords: tcoords,
                        });
                    }
                }
            }
        }

        Ok(IterationSpace {
            bounds: bounds.clone(),
            points,
            ids,
            assigns,
            conns,
            io_conns,
        })
    }

    /// The elaboration bounds.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// A point by handle.
    pub fn point(&self, id: PointId) -> &Point {
        &self.points[id.0]
    }

    /// Looks up a point by coordinates.
    pub fn point_id(&self, coords: &[i64]) -> Option<PointId> {
        self.ids.get(coords).copied()
    }

    /// The surviving point-to-point connections.
    pub fn conns(&self) -> &[Point2PointConn] {
        &self.conns
    }

    /// Mutable access for pruning passes.
    pub(crate) fn conns_mut(&mut self) -> &mut Vec<Point2PointConn> {
        &mut self.conns
    }

    /// The IO connections.
    pub fn io_conns(&self) -> &[IOConn] {
        &self.io_conns
    }

    /// Mutable access for pruning passes.
    pub(crate) fn io_conns_mut(&mut self) -> &mut Vec<IOConn> {
        &mut self.io_conns
    }

    /// The assignments active at a point.
    pub fn assignments(&self, id: PointId) -> &[Assignment] {
        &self.assigns[id.0]
    }

    /// Connections carrying a given variable.
    pub fn conns_for_var(&self, var: VarId) -> impl Iterator<Item = &Point2PointConn> + '_ {
        self.conns.iter().filter(move |c| c.var == var)
    }

    /// IO connections for a given tensor.
    pub fn io_conns_for_tensor(&self, tensor: TensorId) -> impl Iterator<Item = &IOConn> + '_ {
        self.io_conns.iter().filter(move |c| c.tensor == tensor)
    }

    /// Total multiply count across all points (the denominator of the
    /// utilization metrics).
    pub fn total_macs(&self, func: &Functionality) -> usize {
        self.assigns
            .iter()
            .flatten()
            .map(|a| func.assigns()[a.source].rhs.num_muls())
            .sum()
    }
}

fn classify(func: &Functionality, a_idx: usize) -> AssignKind {
    let a = &func.assigns()[a_idx];
    if !a.rhs.input_reads().is_empty() {
        AssignKind::Load(a.rhs.input_reads()[0].0)
    } else if a.rhs.num_muls() + a.rhs.num_adds() + a.rhs.num_comparators() > 0 {
        AssignKind::Compute
    } else if a.rhs.var_reads().is_empty() {
        AssignKind::Init
    } else {
        AssignKind::Propagate
    }
}

impl fmt::Display for IterationSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IterationSpace({} points, {} conns, {} io conns)",
            self.points.len(),
            self.conns.len(),
            self.io_conns.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul_space(n: usize) -> (Functionality, IterationSpace) {
        let f = Functionality::matmul(n, n, n);
        let is = IterationSpace::elaborate(&f, &Bounds::from_extents(&[n, n, n])).unwrap();
        (f, is)
    }

    #[test]
    fn matmul_point_count() {
        let (_, is) = matmul_space(4);
        assert_eq!(is.num_points(), 64);
    }

    #[test]
    fn matmul_conn_counts() {
        let (f, is) = matmul_space(4);
        let vars: Vec<VarId> = f.vars().collect();
        // a propagates along j: conns exist for j in 1..4 → 4*3*4 = 48.
        assert_eq!(is.conns_for_var(vars[0]).count(), 48);
        assert_eq!(is.conns_for_var(vars[1]).count(), 48);
        assert_eq!(is.conns_for_var(vars[2]).count(), 48);
    }

    #[test]
    fn matmul_io_conns() {
        let (f, is) = matmul_space(4);
        let tensors: Vec<TensorId> = f.tensors().collect();
        // A(i,k) is read at the j=0 boundary: 16 reads.
        assert_eq!(is.io_conns_for_tensor(tensors[0]).count(), 16);
        assert_eq!(is.io_conns_for_tensor(tensors[1]).count(), 16);
        // C(i,j) is written at the k=upper boundary: 16 writes.
        let writes: Vec<&IOConn> = is.io_conns_for_tensor(tensors[2]).collect();
        assert_eq!(writes.len(), 16);
        assert!(writes.iter().all(|c| c.dir == IoDir::Write));
    }

    #[test]
    fn matmul_total_macs() {
        let (f, is) = matmul_space(4);
        // One multiply per (i,j,k) point.
        assert_eq!(is.total_macs(&f), 64);
    }

    #[test]
    fn boundary_points_init_then_compute() {
        let (f, is) = matmul_space(2);
        let c = f.vars().nth(2).unwrap();
        // At k=0, c is initialized to 0 and then the MAC runs (the init
        // provides the incoming value); at k=1, only the MAC runs.
        let p0 = is.point_id(&[0, 0, 0]).unwrap();
        let kinds: Vec<AssignKind> = is
            .assignments(p0)
            .iter()
            .filter(|a| a.var == c)
            .map(|a| a.kind)
            .collect();
        assert_eq!(kinds, vec![AssignKind::Init, AssignKind::Compute]);
        let p1 = is.point_id(&[0, 0, 1]).unwrap();
        let kinds: Vec<AssignKind> = is
            .assignments(p1)
            .iter()
            .filter(|a| a.var == c)
            .map(|a| a.kind)
            .collect();
        assert_eq!(kinds, vec![AssignKind::Compute]);
    }

    #[test]
    fn conn_endpoints_differ_by_diff() {
        let (_, is) = matmul_space(3);
        for c in is.conns() {
            let src = is.point(c.src).coords();
            let dst = is.point(c.dst).coords();
            let diff: Vec<i64> = dst.iter().zip(src).map(|(d, s)| d - s).collect();
            assert_eq!(diff, c.diff);
        }
    }

    #[test]
    fn bounds_rank_mismatch_rejected() {
        let f = Functionality::matmul(2, 2, 2);
        let err = IterationSpace::elaborate(&f, &Bounds::from_extents(&[2, 2]));
        assert!(err.is_err());
    }
}
