//! Integration tests for the observability layer: cycle-attributed traces
//! are deterministic (same seed + same fault plan ⇒ byte-identical trace
//! JSON and identical breakdowns), and every simulation entry point's
//! `CycleBreakdown` accounts for exactly its reported cycles — in release
//! builds too, where the library's `debug_assert`s are compiled out.

use stellar_sim::{
    layer_utilization, rows_of_partials, simulate_os_matmul, simulate_sparse_matmul,
    simulate_sparse_matmul_traced, simulate_ws_matmul, simulate_ws_matmul_traced, BalancePolicy,
    CycleBreakdown, DmaModel, DramParams, FaultInjector, FaultPlan, FlattenedMerger, GemmParams,
    L2Cache, Merger, RetryPolicy, RowPartitionedMerger, SparseArrayParams, Tracer, Watchdog,
    DEFAULT_TRACE_CAPACITY,
};
use stellar_tensor::gen;
use stellar_tensor::ops::spgemm_outer_partials;
use stellar_tensor::CscMatrix;

fn sparse_params(balance: BalancePolicy) -> SparseArrayParams {
    SparseArrayParams {
        lanes: 8,
        row_startup_cycles: 1,
        balance,
    }
}

/// Runs the weight-stationary simulation once under a fixed fault plan
/// with tracing on, returning the trace exports and the breakdown.
fn traced_ws_run(seed: u64) -> (String, String, CycleBreakdown) {
    let a = gen::dense(16, 8, 3);
    let b = gen::dense(8, 12, 4);
    let mut tracer = Tracer::with_capacity(DEFAULT_TRACE_CAPACITY);
    let r = simulate_ws_matmul_traced(
        &a,
        &b,
        &mut FaultInjector::new(FaultPlan::transient(seed, 1e-3)),
        Watchdog::default_budget(),
        &mut tracer,
    )
    .expect("traced ws sim");
    (tracer.to_chrome_json(), tracer.to_csv(), r.stats.breakdown)
}

#[test]
fn steal_heavy_traced_sweep_is_byte_identical_across_worker_counts() {
    // A pathologically skewed traced sweep through the work-stealing
    // pool: the first grid point is a large simulation and the tail is
    // sixteen tiny ones, each item a full traced run with its own fault
    // seed. The worker that draws the big point stays pinned on it while
    // the others finish instantly and steal the rest of its deque — and
    // the merged trace exports must still be byte-identical to the
    // sequential sweep at every worker count, because collection is
    // order-preserving and each point's tracer/injector state is local.
    // `with_max_threads` spawns the requested workers even past the
    // machine parallelism, so this holds on single-core runners too.
    use rayon::prelude::*;

    let points: Vec<(u64, (usize, usize, usize))> = std::iter::once((7u64, (24, 12, 16)))
        .chain((0..16u64).map(|i| (100 + i, (5, 3, 4))))
        .collect();
    let run_point = |&(seed, (m, k, n)): &(u64, (usize, usize, usize))| {
        let a = gen::dense(m, k, seed);
        let b = gen::dense(k, n, seed + 1);
        let mut tracer = Tracer::with_capacity(DEFAULT_TRACE_CAPACITY);
        let r = simulate_ws_matmul_traced(
            &a,
            &b,
            &mut FaultInjector::new(FaultPlan::transient(seed, 1e-3)),
            Watchdog::default_budget(),
            &mut tracer,
        )
        .expect("traced sweep point");
        format!(
            "{}\n{}\n{:?}\n",
            tracer.to_chrome_json(),
            tracer.to_csv(),
            r.stats.breakdown
        )
    };
    let sequential: String = points.iter().map(run_point).collect();
    for threads in [1usize, 2, 4, 8] {
        let merged = points
            .par_iter()
            .with_min_len(1)
            .with_max_threads(threads)
            .map(run_point)
            .try_collect_vec()
            .expect("traced sweep must not panic")
            .concat();
        assert_eq!(
            merged, sequential,
            "threads={threads}: traced sweep diverged from the sequential order"
        );
    }
}

#[test]
fn same_seed_and_plan_give_byte_identical_traces() {
    let (json1, csv1, b1) = traced_ws_run(42);
    let (json2, csv2, b2) = traced_ws_run(42);
    assert_eq!(json1, json2, "chrome trace must be byte-identical");
    assert_eq!(csv1, csv2, "csv export must be byte-identical");
    assert_eq!(b1, b2, "cycle breakdown must be identical");
    // A different fault seed is allowed to change the attribution, but
    // never the accounting invariant (checked below); the trace itself
    // must still be internally consistent JSON.
    assert!(json1.starts_with("{\"displayTimeUnit\""));
    assert!(json1.contains("\"traceEvents\":["));
}

#[test]
fn sparse_trace_is_deterministic_under_a_stuck_lane() {
    let b = gen::power_law(32, 32, 6.0, 1.8, 9);
    let run = || {
        let mut plan = FaultPlan::none();
        plan.stuck_lane = Some(2);
        let mut tracer = Tracer::with_capacity(DEFAULT_TRACE_CAPACITY);
        let r = simulate_sparse_matmul_traced(
            &b,
            &sparse_params(BalancePolicy::Global),
            &mut FaultInjector::new(plan),
            Watchdog::default_budget(),
            &mut tracer,
        )
        .expect("stuck-lane sparse sim under global balancing");
        (tracer.to_chrome_json(), r.stats.breakdown, r.stats.cycles)
    };
    let (j1, b1, c1) = run();
    let (j2, b2, c2) = run();
    assert_eq!(j1, j2);
    assert_eq!(b1, b2);
    assert_eq!(c1, c2);
    assert_eq!(b1.total(), c1, "breakdown must account for every cycle");
}

#[test]
fn systolic_breakdowns_sum_to_cycles() {
    let a = gen::dense(12, 7, 1);
    let b = gen::dense(7, 9, 2);
    let ws = simulate_ws_matmul(&a, &b).expect("ws sim");
    assert_eq!(ws.stats.breakdown.total(), ws.stats.cycles);
    let os = simulate_os_matmul(&a, &b).expect("os sim");
    assert_eq!(os.stats.breakdown.total(), os.stats.cycles);
}

#[test]
fn sparse_breakdowns_sum_to_cycles_under_every_policy() {
    let b = gen::imbalanced(32, 256, 4, 48, 8, 7);
    for policy in [
        BalancePolicy::None,
        BalancePolicy::AdjacentRows,
        BalancePolicy::Global,
    ] {
        let r = simulate_sparse_matmul(&b, &sparse_params(policy)).expect("sparse sim");
        assert_eq!(
            r.stats.breakdown.total(),
            r.stats.cycles,
            "policy {policy:?}"
        );
    }
}

#[test]
fn gemm_breakdown_sums_to_cycles() {
    let s = layer_utilization(56, 64, 256, &GemmParams::stellar_gemmini()).expect("gemm model");
    assert_eq!(s.breakdown.total(), s.cycles);
}

#[test]
fn dma_report_breakdowns_sum_to_cycles_with_and_without_faults() {
    let dma = DmaModel::with_slots(16);
    let wd = Watchdog::default_budget();
    for drop in [0.0, 0.05] {
        let mut plan = FaultPlan::none();
        plan.seed = 99;
        plan.dma_drop_per_request = drop;
        let mut inj = FaultInjector::new(plan);
        let rep = dma
            .reliable_contiguous_cycles(4096, &RetryPolicy::exponential(), &mut inj, &wd)
            .expect("contiguous transfer");
        assert_eq!(rep.breakdown.total(), rep.cycles, "contiguous drop={drop}");
        let mut inj = FaultInjector::new(plan);
        let rep = dma
            .reliable_scattered_cycles(64, 8, &RetryPolicy::exponential(), &mut inj, &wd)
            .expect("scattered transfer");
        assert_eq!(rep.breakdown.total(), rep.cycles, "scattered drop={drop}");
    }
}

#[test]
fn merger_breakdowns_sum_to_cycles() {
    let a = gen::uniform(48, 32, 0.2, 11);
    let b = gen::uniform(32, 48, 0.2, 12);
    let partials = spgemm_outer_partials(&CscMatrix::from_csr(&a), &b);
    let rows = rows_of_partials(48, &partials);
    let rp = RowPartitionedMerger::paper_config()
        .simulate(&rows)
        .expect("row-partitioned merge");
    assert_eq!(rp.breakdown.total(), rp.cycles);
    let fl = FlattenedMerger::paper_config()
        .simulate(&rows)
        .expect("flattened merge");
    assert_eq!(fl.breakdown.total(), fl.cycles);
}

#[test]
fn cache_breakdown_accounts_for_all_access_cycles() {
    let mut cache = L2Cache::new(1024, 4, 8, DramParams::default());
    let cycles = cache.access_all((0..4096u64).map(|n| (n * 13) % 2048));
    assert_eq!(cache.breakdown().total(), cycles);
}

#[test]
fn disabled_tracer_collects_nothing_but_breakdowns_still_flow() {
    let a = gen::dense(8, 8, 5);
    let b = gen::dense(8, 8, 6);
    let mut tracer = Tracer::disabled();
    let r = simulate_ws_matmul_traced(
        &a,
        &b,
        &mut FaultInjector::new(FaultPlan::none()),
        Watchdog::default_budget(),
        &mut tracer,
    )
    .expect("ws sim with disabled tracer");
    assert!(tracer.is_empty(), "disabled tracer must record no spans");
    assert_eq!(r.stats.breakdown.total(), r.stats.cycles);
}
