//! Observational equivalence of the event-driven skip-ahead simulation
//! paths against the retained per-cycle / closed-form `reference`
//! implementations.
//!
//! The engine rewrite is only admissible because nothing observable moved:
//! for every random shape, seed, balance policy, and fault plan, the
//! stats, the cycle breakdowns (sum == cycles invariant included), the
//! fault counters, and the *bytes* of the exported Chrome/CSV traces must
//! be identical between the two paths — and when a path fails, both must
//! fail with the same error.

use proptest::prelude::*;
use stellar_sim::{
    dma, merger, simulate_os_matmul_traced, simulate_sparse_matmul_traced,
    simulate_ws_matmul_traced, sparse, systolic, BalancePolicy, DmaModel, FaultInjector, FaultPlan,
    FlattenedMerger, L2Cache, Merger, RetryPolicy, RowPartitionedMerger, SparseArrayParams, Tracer,
    Watchdog,
};
use stellar_tensor::ops::Fiber;
use stellar_tensor::{gen, CsrMatrix, DenseMatrix};

/// A fault plan drawn from the proptest input space.
fn plan_of(seed: u64, kind: u8, stuck: Option<usize>) -> FaultPlan {
    let mut plan = match kind % 4 {
        0 => FaultPlan::none(),
        1 => FaultPlan::transient(seed, 1e-2),
        2 => FaultPlan::transient(seed, 5e-2).with_ecc(),
        _ => {
            let mut p = FaultPlan::none();
            p.dma_drop_per_request = 0.2;
            p.dma_duplicate_per_request = 0.1;
            p
        }
    };
    plan.seed = seed;
    plan.stuck_lane = stuck;
    plan
}

/// A small deterministic dense matrix (values in [-4, 4]).
fn small_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    for r in 0..rows {
        for c in 0..cols {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            m.set(r, c, ((state >> 40) % 9) as f64 - 4.0);
        }
    }
    m
}

/// Both tracers must export identical bytes in every format.
fn assert_traces_identical(got: &Tracer, want: &Tracer) {
    assert_eq!(got.len(), want.len());
    assert_eq!(got.dropped(), want.dropped());
    assert_eq!(got.to_chrome_json(), want.to_chrome_json());
    assert_eq!(got.to_csv(), want.to_csv());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Sparse lane model: skip-ahead vs per-cycle, across all balance
    /// policies, matrix shapes, fault plans, and stuck lanes.
    #[test]
    fn sparse_event_driven_matches_per_cycle(
        rows in 1usize..=48,
        cols in 8usize..=128,
        lanes in 1usize..=8,
        startup in 0u64..=4,
        seed in 0u64..500,
        kind in 0u8..4,
        stuck_raw in 0usize..=8,
        policy in proptest::sample::select(vec![
            BalancePolicy::None,
            BalancePolicy::AdjacentRows,
            BalancePolicy::Global,
        ]),
    ) {
        // 8 encodes "no stuck lane"; anything else pins that lane.
        let stuck = if stuck_raw < 8 { Some(stuck_raw) } else { None };
        let b = if seed % 3 == 0 {
            gen::uniform(rows, cols, 0.15, seed)
        } else {
            gen::imbalanced(rows, cols, (rows / 8).max(1), cols / 2, 4, seed)
        };
        let params = SparseArrayParams { lanes, row_startup_cycles: startup, balance: policy };
        let plan = plan_of(seed, kind, stuck);
        let wd = Watchdog::default_budget();
        let mut inj_a = FaultInjector::new(plan);
        let mut inj_b = FaultInjector::new(plan);
        let mut tr_a = Tracer::enabled();
        let mut tr_b = Tracer::enabled();
        let got = simulate_sparse_matmul_traced(&b, &params, &mut inj_a, wd, &mut tr_a);
        let want =
            sparse::reference::simulate_sparse_matmul_traced(&b, &params, &mut inj_b, wd, &mut tr_b);
        prop_assert_eq!(&got, &want);
        if let Ok(r) = &got {
            r.stats.breakdown.debug_assert_accounts_for(r.stats.cycles, "sparse equivalence");
        }
        assert_traces_identical(&tr_a, &tr_b);
        prop_assert_eq!(inj_a.counts, inj_b.counts);
    }

    /// Sparse: a tight watchdog must expire identically on both paths
    /// (same error variant, budget, and detail bytes).
    #[test]
    fn sparse_watchdog_expires_identically(
        rows in 4usize..=32,
        budget in 1u64..200,
        seed in 0u64..100,
    ) {
        let b = gen::uniform(rows, 64, 0.2, seed);
        let params = SparseArrayParams {
            lanes: 4,
            row_startup_cycles: 1,
            balance: BalancePolicy::Global,
        };
        let wd = Watchdog::with_budget(budget);
        let mut inj_a = FaultInjector::new(FaultPlan::none());
        let mut inj_b = FaultInjector::new(FaultPlan::none());
        let got = simulate_sparse_matmul_traced(
            &b, &params, &mut inj_a, wd, &mut Tracer::disabled());
        let want = sparse::reference::simulate_sparse_matmul_traced(
            &b, &params, &mut inj_b, wd, &mut Tracer::disabled());
        prop_assert_eq!(got, want);
    }

    /// Weight-stationary systolic: flat double-buffered planes vs
    /// per-step nested-Vec allocation, under fault injection and ECC
    /// (every per-PE RNG draw must happen in the same order).
    #[test]
    fn ws_flat_buffers_match_reference(
        m in 1usize..=8,
        k in 1usize..=8,
        n in 1usize..=8,
        seed in 0u64..300,
        kind in 0u8..3,
    ) {
        let a = small_matrix(m, k, seed);
        let b = small_matrix(k, n, seed + 7);
        let plan = plan_of(seed, kind, None);
        let wd = Watchdog::default_budget();
        let mut inj_a = FaultInjector::new(plan);
        let mut inj_b = FaultInjector::new(plan);
        let mut tr_a = Tracer::enabled();
        let mut tr_b = Tracer::enabled();
        let got = simulate_ws_matmul_traced(&a, &b, &mut inj_a, wd, &mut tr_a);
        let want =
            systolic::reference::simulate_ws_matmul_traced(&a, &b, &mut inj_b, wd, &mut tr_b);
        prop_assert_eq!(got, want);
        assert_traces_identical(&tr_a, &tr_b);
        prop_assert_eq!(inj_a.counts, inj_b.counts);
    }

    /// Output-stationary systolic: same equivalence as the WS array.
    #[test]
    fn os_flat_buffers_match_reference(
        m in 1usize..=8,
        k in 1usize..=8,
        n in 1usize..=8,
        seed in 0u64..300,
        kind in 0u8..3,
    ) {
        let a = small_matrix(m, k, seed);
        let b = small_matrix(k, n, seed + 13);
        let plan = plan_of(seed, kind, None);
        let wd = Watchdog::default_budget();
        let mut inj_a = FaultInjector::new(plan);
        let mut inj_b = FaultInjector::new(plan);
        let mut tr_a = Tracer::enabled();
        let mut tr_b = Tracer::enabled();
        let got = simulate_os_matmul_traced(&a, &b, &mut inj_a, wd, &mut tr_a);
        let want =
            systolic::reference::simulate_os_matmul_traced(&a, &b, &mut inj_b, wd, &mut tr_b);
        prop_assert_eq!(got, want);
        assert_traces_identical(&tr_a, &tr_b);
        prop_assert_eq!(inj_a.counts, inj_b.counts);
    }

    /// Mergers: event-queue critical-lane selection and engine-advance
    /// attribution vs the closed forms, including critical-lane ties.
    #[test]
    fn mergers_match_reference(
        num_rows in 0usize..=48,
        lanes in 1usize..=32,
        switch in 0u64..=4,
        width in 1usize..=16,
        startup in 0u64..=8,
        seed in 0u64..200,
    ) {
        // Deterministic multi-fiber rows with deliberate repeats (tie
        // fodder), overlapping coordinates (real k-way merges, not just
        // concatenation), and sign-alternating values so some sums cancel
        // to exactly 0.0 — the engine path's flat row-length counter must
        // agree with the reference's materializing merge on all of it.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let rows: Vec<Vec<Fiber>> = (0..num_rows)
            .map(|_| {
                let num_fibers = ((next() >> 33) % 4) as usize;
                (0..num_fibers)
                    .map(|fi| {
                        let mask = (next() >> 30) & 0xFF_FFFF;
                        let coords: Vec<usize> =
                            (0..24).filter(|c| (mask >> c) & 1 == 1).collect();
                        let values: Vec<f64> = coords
                            .iter()
                            .map(|&c| {
                                let v = (c % 3 + 1) as f64 * 0.5;
                                if fi % 2 == 1 {
                                    -v
                                } else {
                                    v
                                }
                            })
                            .collect();
                        Fiber::new(coords, values)
                    })
                    .filter(|f| !f.is_empty())
                    .collect()
            })
            .collect();
        let wd = Watchdog::default_budget();
        let rp = RowPartitionedMerger { lanes, row_switch_cycles: switch };
        prop_assert_eq!(
            rp.simulate_budgeted(&rows, &wd),
            merger::reference::simulate_row_partitioned(&rp, &rows, &wd)
        );
        let fl = FlattenedMerger { width, startup_cycles: startup };
        prop_assert_eq!(
            fl.simulate_budgeted(&rows, &wd),
            merger::reference::simulate_flattened(&fl, &rows, &wd)
        );
    }

    /// Reliable DMA: engine-advance attribution vs the closed forms, with
    /// the injector's RNG drawn in identical request order.
    #[test]
    fn reliable_dma_matches_reference(
        words in 0u64..10_000,
        reqs in 0u64..400,
        words_each in 1u64..16,
        slots in 1usize..=16,
        seed in 0u64..200,
        drop in 0u8..=3,
        dup in 0u8..=3,
    ) {
        let mut plan = FaultPlan::none();
        plan.seed = seed;
        plan.dma_drop_per_request = f64::from(drop) * 0.1;
        plan.dma_duplicate_per_request = f64::from(dup) * 0.1;
        let dma_model = DmaModel::with_slots(slots);
        let wd = Watchdog::default_budget();
        let policy = RetryPolicy::exponential();
        let mut inj_a = FaultInjector::new(plan);
        let mut inj_b = FaultInjector::new(plan);
        prop_assert_eq!(
            dma_model.reliable_contiguous_cycles(words, &policy, &mut inj_a, &wd),
            dma::reference::reliable_contiguous_cycles(&dma_model, words, &policy, &mut inj_b, &wd)
        );
        prop_assert_eq!(
            dma_model.reliable_scattered_cycles(reqs, words_each, &policy, &mut inj_a, &wd),
            dma::reference::reliable_scattered_cycles(
                &dma_model, reqs, words_each, &policy, &mut inj_b, &wd)
        );
        prop_assert_eq!(inj_a.counts, inj_b.counts);
    }

    /// L2 cache: the flat tag store vs the HashMap-of-Vec reference, per
    /// access (latency and hit/miss) and in aggregate.
    #[test]
    fn cache_flat_store_matches_reference(
        addrs in proptest::collection::vec(0u64..4096, 0..400),
        ways in 1usize..=8,
    ) {
        let dram = stellar_sim::DramParams::default();
        let mut flat = L2Cache::new(256, ways, 4, dram);
        let mut hash = stellar_sim::cache::reference::L2Cache::new(256, ways, 4, dram);
        for (n, &a) in addrs.iter().enumerate() {
            prop_assert_eq!(flat.access(a), hash.access(a), "access #{}", n);
        }
        prop_assert_eq!(flat.hits(), hash.hits());
        prop_assert_eq!(flat.misses(), hash.misses());
        prop_assert_eq!(flat.breakdown(), hash.breakdown());
    }
}

/// The deadlock path (stuck lane owning rows, no balancing) must produce
/// identical `Deadlock` errors — variant, cycle, and detail bytes.
#[test]
fn sparse_deadlock_is_byte_identical() {
    let b = gen::uniform(12, 64, 0.3, 9);
    let params = SparseArrayParams {
        lanes: 4,
        row_startup_cycles: 1,
        balance: BalancePolicy::None,
    };
    let mut plan = FaultPlan::none();
    plan.stuck_lane = Some(1);
    let wd = Watchdog::default_budget();
    let got = simulate_sparse_matmul_traced(
        &b,
        &params,
        &mut FaultInjector::new(plan),
        wd,
        &mut Tracer::disabled(),
    );
    let want = sparse::reference::simulate_sparse_matmul_traced(
        &b,
        &params,
        &mut FaultInjector::new(plan),
        wd,
        &mut Tracer::disabled(),
    );
    assert!(got.is_err(), "a stuck lane with no balancing must deadlock");
    assert_eq!(got, want);
}

/// The e04-scale workloads (the sweep the speedup criterion is measured
/// on) run byte-identically through both paths under every policy.
#[test]
fn e04_scale_workloads_are_byte_identical() {
    let workloads = [
        gen::uniform(64, 256, 0.1, 1),
        gen::imbalanced(64, 512, 4, 96, 8, 2),
        gen::imbalanced(64, 512, 2, 256, 4, 3),
        gen::power_law(64, 512, 16.0, 1.7, 4),
    ];
    for (w, b) in workloads.iter().enumerate() {
        for policy in [
            BalancePolicy::None,
            BalancePolicy::AdjacentRows,
            BalancePolicy::Global,
        ] {
            let params = SparseArrayParams {
                lanes: 8,
                row_startup_cycles: 1,
                balance: policy,
            };
            let wd = Watchdog::default_budget();
            let mut tr_a = Tracer::enabled();
            let mut tr_b = Tracer::enabled();
            let got = simulate_sparse_matmul_traced(
                b,
                &params,
                &mut FaultInjector::new(FaultPlan::none()),
                wd,
                &mut tr_a,
            );
            let want = sparse::reference::simulate_sparse_matmul_traced(
                b,
                &params,
                &mut FaultInjector::new(FaultPlan::none()),
                wd,
                &mut tr_b,
            );
            assert_eq!(got, want, "workload {w}, {policy:?}");
            assert_traces_identical(&tr_a, &tr_b);
        }
    }
}

/// Zero-shape edge cases go through the same early exits on both paths.
#[test]
fn degenerate_shapes_are_identical() {
    let empty = CsrMatrix::from_dense(&DenseMatrix::zeros(4, 4));
    let params = SparseArrayParams {
        lanes: 4,
        row_startup_cycles: 1,
        balance: BalancePolicy::Global,
    };
    let wd = Watchdog::default_budget();
    assert_eq!(
        simulate_sparse_matmul_traced(
            &empty,
            &params,
            &mut FaultInjector::new(FaultPlan::none()),
            wd,
            &mut Tracer::disabled(),
        ),
        sparse::reference::simulate_sparse_matmul_traced(
            &empty,
            &params,
            &mut FaultInjector::new(FaultPlan::none()),
            wd,
            &mut Tracer::disabled(),
        ),
    );
    // Mismatched systolic shapes: identical InvalidConfig bytes.
    let a = small_matrix(3, 4, 1);
    let b = small_matrix(5, 2, 2);
    let mut inj = FaultInjector::new(FaultPlan::none());
    assert_eq!(
        simulate_ws_matmul_traced(&a, &b, &mut inj, wd, &mut Tracer::disabled()),
        systolic::reference::simulate_ws_matmul_traced(
            &a,
            &b,
            &mut inj,
            wd,
            &mut Tracer::disabled()
        ),
    );
}
