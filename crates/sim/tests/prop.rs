//! Property tests for the simulators: correctness of computed results,
//! conservation of work, and monotonicity of the performance models.

use proptest::prelude::*;
use stellar_sim::{
    gemm_cycles, simulate_sparse_matmul, simulate_ws_matmul, BalancePolicy, DmaModel,
    FlattenedMerger, GemmParams, L2Cache, Merger, RowPartitionedMerger, SparseArrayParams,
};
use stellar_tensor::ops::Fiber;
use stellar_tensor::{gen, DenseMatrix};

fn small_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    for r in 0..rows {
        for c in 0..cols {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            m.set(r, c, ((state >> 40) % 9) as f64 - 4.0);
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cycle-stepped systolic array computes exact matmuls for all
    /// shapes.
    #[test]
    fn systolic_always_correct(m in 1usize..=6, k in 1usize..=6, n in 1usize..=6, seed in 0u64..300) {
        let a = small_matrix(m, k, seed);
        let b = small_matrix(k, n, seed + 7);
        let r = simulate_ws_matmul(&a, &b).unwrap();
        prop_assert!(r.product.approx_eq(&a.matmul(&b), 1e-9));
        prop_assert!(r.stats.cycles > 0);
        prop_assert_eq!(r.stats.traffic.macs, (m * n * k) as u64);
    }

    /// Load balancing never increases cycles, and stronger policies
    /// dominate weaker ones.
    #[test]
    fn balancing_is_monotone(rows in 8usize..=48, heavy in 1usize..=4, seed in 0u64..200) {
        let b = gen::imbalanced(rows, 256, heavy, 64, 4, seed);
        let run = |policy| {
            simulate_sparse_matmul(&b, &SparseArrayParams {
                lanes: 8,
                row_startup_cycles: 1,
                balance: policy,
            }).unwrap().stats.cycles
        };
        let none = run(BalancePolicy::None);
        let adj = run(BalancePolicy::AdjacentRows);
        let global = run(BalancePolicy::Global);
        prop_assert!(adj <= none, "adjacent {adj} > none {none}");
        prop_assert!(global <= adj, "global {global} > adjacent {adj}");
    }

    /// Both mergers merge the same number of elements, whatever the rows.
    #[test]
    fn mergers_conserve_elements(seed in 0u64..100, density in 0.05f64..0.3) {
        let a = gen::uniform(48, 48, density, seed);
        use stellar_tensor::ops::spgemm_outer_partials;
        use stellar_tensor::CscMatrix;
        let partials = spgemm_outer_partials(&CscMatrix::from_csr(&a), &a);
        let rows = stellar_sim::rows_of_partials(48, &partials);
        let rp = RowPartitionedMerger::paper_config().simulate(&rows).unwrap();
        let fl = FlattenedMerger::paper_config().simulate(&rows).unwrap();
        prop_assert_eq!(rp.merged_elements, fl.merged_elements);
        // Neither exceeds its peak throughput.
        prop_assert!(rp.elements_per_cycle() <= 32.0 + 1e-9);
        prop_assert!(fl.elements_per_cycle() <= 16.0 + 1e-9);
    }

    /// A merger batch of identical-length rows runs the row-partitioned
    /// merger at high efficiency.
    #[test]
    fn uniform_rows_fill_lanes(len in 8usize..=64) {
        let rows: Vec<Vec<Fiber>> = (0..64)
            .map(|_| vec![Fiber::new((0..len).collect(), vec![1.0; len])])
            .collect();
        let rp = RowPartitionedMerger { lanes: 32, row_switch_cycles: 0 }.simulate(&rows).unwrap();
        prop_assert!(rp.utilization.fraction() > 0.95);
    }

    /// GEMM cycle counts are monotone in every dimension.
    #[test]
    fn gemm_cycles_monotone(m in 8usize..=64, k in 8usize..=64, n in 8usize..=64) {
        let p = GemmParams::handwritten_gemmini();
        let base = gemm_cycles(m, k, n, &p).unwrap().total();
        prop_assert!(gemm_cycles(m + 8, k, n, &p).unwrap().total() >= base);
        prop_assert!(gemm_cycles(m, k + 16, n, &p).unwrap().total() >= base);
        prop_assert!(gemm_cycles(m, k, n + 16, &p).unwrap().total() >= base);
    }

    /// More DMA slots never slow down scattered transfers, and contiguous
    /// transfers are slot-independent.
    #[test]
    fn dma_slots_monotone(reqs in 1u64..2000, slots in 1usize..=32) {
        let one = DmaModel::with_slots(1);
        let many = DmaModel::with_slots(slots);
        prop_assert!(many.scattered_cycles(reqs, 1) <= one.scattered_cycles(reqs, 1));
        prop_assert_eq!(many.contiguous_cycles(reqs), one.contiguous_cycles(reqs));
    }

    /// A fault-free reliable transfer costs exactly the base cycles, for
    /// any retry policy — reliability hardware is free when nothing fails.
    #[test]
    fn fault_free_retries_are_free(
        reqs in 1u64..500,
        slots in 1usize..=32,
        max_retries in 0u32..=8,
        backoff in 0u64..64,
    ) {
        use stellar_sim::{FaultInjector, FaultPlan, RetryPolicy, Watchdog};
        let dma = DmaModel::with_slots(slots);
        let policy = RetryPolicy {
            max_retries,
            base_backoff_cycles: backoff,
            timeout_cycles: 240,
        };
        let mut inj = FaultInjector::new(FaultPlan::none());
        let wd = Watchdog::default_budget();
        let r = dma.reliable_scattered_cycles(reqs, 1, &policy, &mut inj, &wd).unwrap();
        prop_assert_eq!(r.cycles, dma.scattered_cycles(reqs, 1));
        prop_assert_eq!(r.retries, 0);
        let r = dma.reliable_contiguous_cycles(reqs, &policy, &mut inj, &wd).unwrap();
        prop_assert_eq!(r.cycles, dma.contiguous_cycles(reqs));
    }

    /// Recovery cycles are monotone in the drop rate: a lossier link never
    /// finishes faster (same seed, same shape).
    #[test]
    fn lossier_links_never_faster(reqs in 50u64..300, seed in 0u64..100) {
        use stellar_sim::{FaultInjector, FaultPlan, RetryPolicy, Watchdog};
        let dma = DmaModel::with_slots(4);
        let wd = Watchdog::default_budget();
        let run = |rate: f64| {
            let mut plan = FaultPlan::none();
            plan.seed = seed;
            plan.dma_drop_per_request = rate;
            let mut inj = FaultInjector::new(plan);
            dma.reliable_scattered_cycles(reqs, 1, &RetryPolicy {
                max_retries: 50,
                base_backoff_cycles: 8,
                timeout_cycles: 240,
            }, &mut inj, &wd).unwrap().cycles
        };
        let clean = run(0.0);
        let lossy = run(0.2);
        prop_assert!(lossy >= clean, "lossy {lossy} < clean {clean}");
    }

    /// Cache hit accounting is consistent: hits + misses equals accesses,
    /// and a repeated access to the same line hits.
    #[test]
    fn cache_accounting_consistent(addrs in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut c = L2Cache::new(1024, 4, 8, stellar_sim::DramParams::default());
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        let (_, hit) = c.access(addrs[addrs.len() - 1]);
        prop_assert!(hit, "immediate re-access must hit");
    }
}
