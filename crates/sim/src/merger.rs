//! Merger spatial-array models: row-partitioned (GAMMA-like) and flattened
//! (SpArch-like) partial-matrix mergers (Figures 18 and 19, §VI-D).
//!
//! Outer-product SpGEMM produces scattered partial matrices that must be
//! merged (summed at matching coordinates). GAMMA-style mergers give each
//! PE lane one output row, emitting one merged element per lane per cycle —
//! cheap, but sensitive to row-length imbalance. SpArch-style mergers
//! flatten all rows into one fiber and pop up to `width` elements per cycle
//! regardless of row boundaries — imbalance-immune, but area-hungry
//! (§VI-D: 60% of SpArch's area, 13× a row-partitioned merger).
//!
//! Both models run on the shared skip-ahead [`Engine`]: lane completions
//! are scheduled as events (the last event to pop *is* the critical lane,
//! because the queue's FIFO tie-break matches the reference's last-max
//! rule) and the elapsed cycles are attributed through engine advances, so
//! the `sum(breakdown) == cycles` invariant is structural. The original
//! closed-form implementations are retained in [`reference`] as the
//! equivalence oracle.

use stellar_tensor::ops::{merge_fibers, Fiber, PartialMatrix};

use crate::engine::{Engine, EventQueue};
use crate::error::{SimError, Watchdog};
use crate::stats::Utilization;
use crate::trace::{CycleBreakdown, StallClass};

/// Merger throughput statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MergeStats {
    /// Cycles taken.
    pub cycles: u64,
    /// Total merged output elements produced.
    pub merged_elements: u64,
    /// Comparator occupancy.
    pub utilization: Utilization,
    /// Where the critical path's cycles went: `Compute` for ideally
    /// distributed merge work, `LoadImbalance` for excess length of the
    /// critical lane, `MergeStall` for row-switch restarts and
    /// partial-width pops, `Fill` for pipeline startup. Sums to `cycles`.
    pub breakdown: CycleBreakdown,
}

impl MergeStats {
    /// Merged elements per cycle — the y-axis of Figure 18.
    pub fn elements_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.merged_elements as f64 / self.cycles as f64
        }
    }
}

/// A merger design point.
pub trait Merger {
    /// Maximum merged elements per cycle.
    fn max_throughput(&self) -> usize;

    /// Simulates merging one batch of per-row fiber groups under an
    /// explicit cycle budget. `rows[r]` holds the fibers (one per partial
    /// matrix) contributing to output row `r`. The merged values themselves
    /// are checked against [`merge_fibers`] in tests.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WatchdogExpired`] if the merge needs more cycles
    /// than the watchdog allows.
    fn simulate_budgeted(
        &self,
        rows: &[Vec<Fiber>],
        watchdog: &Watchdog,
    ) -> Result<MergeStats, SimError>;

    /// [`Merger::simulate_budgeted`] under the default watchdog budget.
    fn simulate(&self, rows: &[Vec<Fiber>]) -> Result<MergeStats, SimError> {
        self.simulate_budgeted(rows, &Watchdog::default_budget())
    }
}

/// Flat-SoA counter for merged output-row lengths.
///
/// The merger models only need `merge_fibers(fibers).len()` per row — the
/// number of coordinates whose summed value is nonzero — yet the k-way
/// merge materializes the full coord/value vectors (two allocations per
/// row) and re-scans every fiber head once per output element. This
/// counter instead accumulates each row into a dense value array indexed
/// by coordinate, reused across rows via a generation stamp so no
/// clearing pass is needed.
///
/// Per coordinate, values are added in fiber order starting from `0.0` —
/// exactly the float-add order of [`merge_fibers`]'s inner loop (fiber
/// coords are strictly increasing, so the merge visits each fiber's entry
/// for a coordinate exactly once, in fiber order). The sums are therefore
/// bit-identical, the `!= 0.0` cancellation test agrees, and the counted
/// length matches the materializing merge exactly. The [`reference`]
/// module keeps calling [`merge_fibers`] itself, so the engine-vs-oracle
/// equivalence tests cross-check this counter on every batch.
#[derive(Default)]
struct MergeCounter {
    sums: Vec<f64>,
    stamp: Vec<u64>,
    generation: u64,
    touched: Vec<usize>,
}

impl MergeCounter {
    /// `merge_fibers(fibers).len() as u64`, without materializing the
    /// merged fiber.
    fn merged_len(&mut self, fibers: &[Fiber]) -> u64 {
        let Some(max) = fibers.iter().filter_map(|f| f.coords.last()).max() else {
            return 0;
        };
        if self.sums.len() <= *max {
            self.sums.resize(max + 1, 0.0);
            self.stamp.resize(max + 1, 0);
        }
        self.generation += 1;
        let generation = self.generation;
        /// One stamped accumulation: first touch in this generation
        /// clears the slot and records it, then the value is added.
        #[inline(always)]
        fn tally(
            stamp: &mut [u64],
            sums: &mut [f64],
            touched: &mut Vec<usize>,
            generation: u64,
            c: usize,
            v: f64,
        ) {
            if stamp[c] != generation {
                stamp[c] = generation;
                sums[c] = 0.0;
                touched.push(c);
            }
            sums[c] += v;
        }
        for f in fibers {
            debug_assert!(
                f.coords.windows(2).all(|w| w[0] < w[1]),
                "fiber coords must be strictly increasing"
            );
            // 4-wide unrolled stamp scan. Coords are strictly increasing
            // within a fiber, so the four lanes of a quad touch four
            // distinct slots — no intra-quad aliasing — and each
            // coordinate still receives its adds in fiber order, keeping
            // the float sums bit-identical to the scalar scan.
            let len = f.coords.len().min(f.values.len());
            let mut x = 0usize;
            while x + 4 <= len {
                let (c0, c1, c2, c3) = (
                    f.coords[x],
                    f.coords[x + 1],
                    f.coords[x + 2],
                    f.coords[x + 3],
                );
                let (v0, v1, v2, v3) = (
                    f.values[x],
                    f.values[x + 1],
                    f.values[x + 2],
                    f.values[x + 3],
                );
                tally(
                    &mut self.stamp,
                    &mut self.sums,
                    &mut self.touched,
                    generation,
                    c0,
                    v0,
                );
                tally(
                    &mut self.stamp,
                    &mut self.sums,
                    &mut self.touched,
                    generation,
                    c1,
                    v1,
                );
                tally(
                    &mut self.stamp,
                    &mut self.sums,
                    &mut self.touched,
                    generation,
                    c2,
                    v2,
                );
                tally(
                    &mut self.stamp,
                    &mut self.sums,
                    &mut self.touched,
                    generation,
                    c3,
                    v3,
                );
                x += 4;
            }
            while x < len {
                tally(
                    &mut self.stamp,
                    &mut self.sums,
                    &mut self.touched,
                    generation,
                    f.coords[x],
                    f.values[x],
                );
                x += 1;
            }
        }
        let sums = &self.sums;
        self.touched.drain(..).filter(|&c| sums[c] != 0.0).count() as u64
    }
}

/// A GAMMA-style row-partitioned merger: `lanes` PEs, each merging whole
/// rows, one element per cycle per lane (Figure 19a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowPartitionedMerger {
    /// Number of row lanes (the paper's low-area configuration uses 32).
    pub lanes: usize,
    /// Pipeline restart cost when a lane switches rows.
    pub row_switch_cycles: u64,
}

impl RowPartitionedMerger {
    /// The §VI-D configuration: 32 lanes.
    pub fn paper_config() -> RowPartitionedMerger {
        RowPartitionedMerger {
            lanes: 32,
            row_switch_cycles: 1,
        }
    }
}

impl Merger for RowPartitionedMerger {
    fn max_throughput(&self) -> usize {
        self.lanes
    }

    fn simulate_budgeted(
        &self,
        rows: &[Vec<Fiber>],
        watchdog: &Watchdog,
    ) -> Result<MergeStats, SimError> {
        // Per-row output length (the lane busy time for that row),
        // counted flat instead of materializing each merged fiber.
        let mut counter = MergeCounter::default();
        let row_cost: Vec<u64> = rows
            .iter()
            .map(|fibers| counter.merged_len(fibers))
            .collect();
        let merged_elements: u64 = row_cost.iter().sum();
        // Greedy longest-processing-time assignment would be the balanced
        // ideal; hardware assigns rows to lanes in arrival order.
        let lanes = self.lanes.max(1);
        let mut lane_time = vec![0u64; lanes];
        let mut lane_elems = vec![0u64; lanes];
        let mut lane_switch = vec![0u64; lanes];
        for (r, &cost) in row_cost.iter().enumerate() {
            if cost == 0 {
                continue;
            }
            let lane = r % lanes;
            lane_time[lane] += cost + self.row_switch_cycles;
            lane_elems[lane] += cost;
            lane_switch[lane] += self.row_switch_cycles;
        }
        // Each lane drains its queue independently; its completion is one
        // event. The queue pops in (time, schedule-order) — so the last
        // event out is the highest-indexed lane among those tied for the
        // longest time, matching the reference's `max_by_key` (last max).
        let mut queue = EventQueue::with_capacity(lanes);
        for (l, &t) in lane_time.iter().enumerate() {
            if t > 0 {
                queue.schedule(t, l as u32);
            }
        }
        let mut cycles = 0u64;
        let mut crit = 0usize;
        while let Some(ev) = queue.pop() {
            // Skip straight from completion to completion; intermediate
            // cycles carry no state change by construction.
            cycles = ev.time;
            crit = ev.key as usize;
        }
        watchdog.check_total(cycles, "row-partitioned merge")?;
        // The critical lane defines the cycle count; attribute its time:
        // the share a perfectly balanced assignment would also pay is
        // Compute, the excess is LoadImbalance, restarts are MergeStall.
        let ideal = merged_elements.div_ceil(lanes as u64);
        let compute = lane_elems[crit].min(ideal);
        let mut engine = Engine::new(*watchdog);
        engine.advance(compute, StallClass::Compute, "row-partitioned merge")?;
        engine.advance(
            lane_elems[crit] - compute,
            StallClass::LoadImbalance,
            "row-partitioned merge",
        )?;
        engine.advance(
            lane_switch[crit],
            StallClass::MergeStall,
            "row-partitioned merge",
        )?;
        let breakdown = engine.into_breakdown();
        breakdown.debug_assert_accounts_for(cycles, "row-partitioned merge");
        let busy: u64 = lane_time.iter().sum();
        Ok(MergeStats {
            cycles,
            merged_elements,
            utilization: Utilization {
                busy,
                total: cycles * self.lanes as u64,
            },
            breakdown,
        })
    }
}

/// A SpArch-style flattened merger: all rows form one fiber, up to `width`
/// elements pop per cycle regardless of row boundaries (Figure 19b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlattenedMerger {
    /// Elements merged per cycle (SpArch uses 16, with 128 64-bit
    /// comparators).
    pub width: usize,
    /// Pipeline fill cost per merge batch.
    pub startup_cycles: u64,
}

impl FlattenedMerger {
    /// The SpArch configuration: 16 elements per cycle.
    pub fn paper_config() -> FlattenedMerger {
        FlattenedMerger {
            width: 16,
            startup_cycles: 4,
        }
    }
}

impl Merger for FlattenedMerger {
    fn max_throughput(&self) -> usize {
        self.width
    }

    fn simulate_budgeted(
        &self,
        rows: &[Vec<Fiber>],
        watchdog: &Watchdog,
    ) -> Result<MergeStats, SimError> {
        let mut counter = MergeCounter::default();
        let merged_elements: u64 = rows.iter().map(|fibers| counter.merged_len(fibers)).sum();
        let width = self.width.max(1) as u64;
        let full_steps = merged_elements / width;
        let steps = merged_elements.div_ceil(width);
        let cycles = self.startup_cycles + steps;
        watchdog.check_total(cycles, "flattened merge")?;
        // Skip-ahead in three leaps: startup is pipeline fill; full-width
        // pops are compute; the final partial-width pop is a merge stall
        // (comparators idle).
        let mut engine = Engine::new(*watchdog);
        engine.advance(self.startup_cycles, StallClass::Fill, "flattened merge")?;
        engine.advance(full_steps, StallClass::Compute, "flattened merge")?;
        engine.advance(
            steps - full_steps,
            StallClass::MergeStall,
            "flattened merge",
        )?;
        let breakdown = engine.into_breakdown();
        breakdown.debug_assert_accounts_for(cycles, "flattened merge");
        Ok(MergeStats {
            cycles,
            merged_elements,
            utilization: Utilization {
                busy: merged_elements,
                total: cycles * width,
            },
            breakdown,
        })
    }
}

/// Groups the entries of a set of partial matrices into per-output-row
/// fibers: the input format of a merger batch.
pub fn rows_of_partials(num_rows: usize, partials: &[PartialMatrix]) -> Vec<Vec<Fiber>> {
    let mut rows: Vec<Vec<Fiber>> = vec![Vec::new(); num_rows];
    for p in partials {
        // Collect this partial's entries per row (already sorted row-major).
        let mut cur_row = usize::MAX;
        let mut coords: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for (r, c, v) in p.entries.iter() {
            if r != cur_row {
                if !coords.is_empty() {
                    rows[cur_row].push(Fiber::new(
                        std::mem::take(&mut coords),
                        std::mem::take(&mut values),
                    ));
                }
                cur_row = r;
            }
            coords.push(c);
            values.push(v);
        }
        if !coords.is_empty() {
            rows[cur_row].push(Fiber::new(coords, values));
        }
    }
    rows
}

/// The retained closed-form per-cycle accountings — the observational
/// equivalence oracle for the engine-backed `Merger` impls above and the
/// "pre" side of the `sim` benchmark suite.
pub mod reference {
    use super::*;

    /// Closed-form counterpart of the engine-backed
    /// [`RowPartitionedMerger::simulate_budgeted`](super::Merger::simulate_budgeted)
    /// (identical observable behaviour).
    ///
    /// # Errors
    ///
    /// [`SimError::WatchdogExpired`] past the budget.
    pub fn simulate_row_partitioned(
        m: &RowPartitionedMerger,
        rows: &[Vec<Fiber>],
        watchdog: &Watchdog,
    ) -> Result<MergeStats, SimError> {
        // Per-row output length (the lane busy time for that row).
        let row_cost: Vec<u64> = rows
            .iter()
            .map(|fibers| merge_fibers(fibers).len() as u64)
            .collect();
        let merged_elements: u64 = row_cost.iter().sum();
        // Greedy longest-processing-time assignment would be the balanced
        // ideal; hardware assigns rows to lanes in arrival order.
        let lanes = m.lanes.max(1);
        let mut lane_time = vec![0u64; lanes];
        let mut lane_elems = vec![0u64; lanes];
        let mut lane_switch = vec![0u64; lanes];
        for (r, &cost) in row_cost.iter().enumerate() {
            if cost == 0 {
                continue;
            }
            let lane = r % lanes;
            lane_time[lane] += cost + m.row_switch_cycles;
            lane_elems[lane] += cost;
            lane_switch[lane] += m.row_switch_cycles;
        }
        let cycles = lane_time.iter().copied().max().unwrap_or(0);
        watchdog.check_total(cycles, "row-partitioned merge")?;
        // The critical lane defines the cycle count; attribute its time:
        // the share a perfectly balanced assignment would also pay is
        // Compute, the excess is LoadImbalance, restarts are MergeStall.
        let crit = lane_time
            .iter()
            .enumerate()
            .max_by_key(|&(_, &t)| t)
            .map(|(l, _)| l)
            .unwrap_or(0);
        let ideal = merged_elements.div_ceil(lanes as u64);
        let compute = lane_elems[crit].min(ideal);
        let breakdown = CycleBreakdown::new()
            .with(StallClass::Compute, compute)
            .with(StallClass::LoadImbalance, lane_elems[crit] - compute)
            .with(StallClass::MergeStall, lane_switch[crit]);
        breakdown.debug_assert_accounts_for(cycles, "row-partitioned merge");
        let busy: u64 = lane_time.iter().sum();
        Ok(MergeStats {
            cycles,
            merged_elements,
            utilization: Utilization {
                busy,
                total: cycles * m.lanes as u64,
            },
            breakdown,
        })
    }

    /// Closed-form counterpart of the engine-backed
    /// [`FlattenedMerger::simulate_budgeted`](super::Merger::simulate_budgeted)
    /// (identical observable behaviour).
    ///
    /// # Errors
    ///
    /// [`SimError::WatchdogExpired`] past the budget.
    pub fn simulate_flattened(
        m: &FlattenedMerger,
        rows: &[Vec<Fiber>],
        watchdog: &Watchdog,
    ) -> Result<MergeStats, SimError> {
        let merged_elements: u64 = rows
            .iter()
            .map(|fibers| merge_fibers(fibers).len() as u64)
            .sum();
        let width = m.width.max(1) as u64;
        let full_steps = merged_elements / width;
        let steps = merged_elements.div_ceil(width);
        let cycles = m.startup_cycles + steps;
        watchdog.check_total(cycles, "flattened merge")?;
        // Startup is pipeline fill; full-width pops are compute; the
        // final partial-width pop is a merge stall (comparators idle).
        let breakdown = CycleBreakdown::new()
            .with(StallClass::Fill, m.startup_cycles)
            .with(StallClass::Compute, full_steps)
            .with(StallClass::MergeStall, steps - full_steps);
        breakdown.debug_assert_accounts_for(cycles, "flattened merge");
        Ok(MergeStats {
            cycles,
            merged_elements,
            utilization: Utilization {
                busy: merged_elements,
                total: cycles * width,
            },
            breakdown,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_tensor::ops::spgemm_outer_partials;
    use stellar_tensor::{gen, CscMatrix};

    fn partial_rows(seed: u64, density: f64) -> Vec<Vec<Fiber>> {
        let a = gen::uniform(64, 48, density, seed);
        let b = gen::uniform(48, 64, density, seed + 1);
        let partials = spgemm_outer_partials(&CscMatrix::from_csr(&a), &b);
        rows_of_partials(64, &partials)
    }

    #[test]
    fn rows_of_partials_matches_golden() {
        let a = gen::uniform(16, 12, 0.3, 5);
        let b = gen::uniform(12, 16, 0.3, 6);
        let partials = spgemm_outer_partials(&CscMatrix::from_csr(&a), &b);
        let rows = rows_of_partials(16, &partials);
        let golden = stellar_tensor::ops::spgemm_outer(&CscMatrix::from_csr(&a), &b);
        for (r, fibers) in rows.iter().enumerate() {
            let merged = merge_fibers(fibers);
            let (cols, vals) = golden.row(r);
            assert_eq!(merged.coords, cols.to_vec(), "row {r} coords");
            for (got, want) in merged.values.iter().zip(vals) {
                assert!((got - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn flattened_hits_peak_on_long_rows() {
        let rows = partial_rows(1, 0.4);
        let m = FlattenedMerger::paper_config();
        let stats = m.simulate(&rows).unwrap();
        assert!(
            stats.elements_per_cycle() > 14.0,
            "flattened should run near 16 elem/cyc, got {:.1}",
            stats.elements_per_cycle()
        );
    }

    #[test]
    fn row_partitioned_beats_flattened_on_balanced_rows() {
        // With many similar-length rows, the 32-lane merger's higher peak
        // wins — the §VI-D observation that 4 matrices ran *faster* on the
        // cheaper merger.
        let rows = partial_rows(2, 0.4);
        let rp = RowPartitionedMerger::paper_config()
            .simulate(&rows)
            .unwrap();
        let fl = FlattenedMerger::paper_config().simulate(&rows).unwrap();
        assert!(
            rp.elements_per_cycle() > fl.elements_per_cycle(),
            "row-partitioned {:.1} vs flattened {:.1}",
            rp.elements_per_cycle(),
            fl.elements_per_cycle()
        );
    }

    #[test]
    fn imbalance_hurts_row_partitioned_only() {
        // A single huge row with many tiny ones: lanes idle behind the big
        // row.
        let mut rows: Vec<Vec<Fiber>> = Vec::new();
        rows.push(vec![Fiber::new((0..2000).collect(), vec![1.0; 2000])]);
        for r in 0..63 {
            rows.push(vec![Fiber::new(vec![r], vec![1.0])]);
        }
        let rp = RowPartitionedMerger::paper_config()
            .simulate(&rows)
            .unwrap();
        let fl = FlattenedMerger::paper_config().simulate(&rows).unwrap();
        assert!(
            fl.elements_per_cycle() > rp.elements_per_cycle(),
            "flattened {:.1} must beat row-partitioned {:.1} under imbalance",
            fl.elements_per_cycle(),
            rp.elements_per_cycle()
        );
    }

    #[test]
    fn breakdowns_sum_and_separate_the_designs() {
        use crate::trace::StallClass;
        // The imbalanced batch: row-partitioned blames LoadImbalance,
        // flattened doesn't have the concept.
        let mut rows: Vec<Vec<Fiber>> = Vec::new();
        rows.push(vec![Fiber::new((0..2000).collect(), vec![1.0; 2000])]);
        for r in 0..63 {
            rows.push(vec![Fiber::new(vec![r], vec![1.0])]);
        }
        let rp = RowPartitionedMerger::paper_config()
            .simulate(&rows)
            .unwrap();
        assert_eq!(rp.breakdown.total(), rp.cycles);
        assert_eq!(rp.breakdown.dominant(), Some(StallClass::LoadImbalance));
        let fl = FlattenedMerger::paper_config().simulate(&rows).unwrap();
        assert_eq!(fl.breakdown.total(), fl.cycles);
        assert_eq!(fl.breakdown.get(StallClass::LoadImbalance), 0);
        assert_eq!(fl.breakdown.dominant(), Some(StallClass::Compute));
        assert_eq!(fl.breakdown.get(StallClass::Fill), 4);
    }

    #[test]
    fn empty_batch() {
        let rp = RowPartitionedMerger::paper_config().simulate(&[]).unwrap();
        assert_eq!(rp.cycles, 0);
        assert_eq!(rp.elements_per_cycle(), 0.0);
    }

    #[test]
    fn merge_respects_watchdog_budget() {
        let rows = partial_rows(3, 0.4);
        let need = FlattenedMerger::paper_config()
            .simulate(&rows)
            .unwrap()
            .cycles;
        let err = FlattenedMerger::paper_config()
            .simulate_budgeted(&rows, &Watchdog::with_budget(need - 1))
            .unwrap_err();
        assert!(matches!(err, SimError::WatchdogExpired { .. }));
        let ok = FlattenedMerger::paper_config()
            .simulate_budgeted(&rows, &Watchdog::with_budget(need))
            .unwrap();
        assert_eq!(ok.cycles, need);
    }

    #[test]
    fn max_throughputs() {
        assert_eq!(RowPartitionedMerger::paper_config().max_throughput(), 32);
        assert_eq!(FlattenedMerger::paper_config().max_throughput(), 16);
    }

    #[test]
    fn merge_counter_matches_merge_fibers_on_cancellation() {
        // The flat counter must reproduce merge_fibers' exact `!= 0.0`
        // cancellation semantics: +x/−x at the same coordinate vanishes
        // from the count, sums that pass through zero mid-accumulation
        // but end nonzero stay, and disjoint fibers simply union. The
        // counter is also reused across rows to exercise the stamp.
        let batches: Vec<Vec<Fiber>> = vec![
            // exact cancellation at coord 3; coord 5 survives
            vec![
                Fiber::new(vec![3, 5], vec![1.5, 2.0]),
                Fiber::new(vec![3], vec![-1.5]),
            ],
            // through-zero partial sum (1 - 1 + 4) must still count
            vec![
                Fiber::new(vec![7], vec![1.0]),
                Fiber::new(vec![7], vec![-1.0]),
                Fiber::new(vec![7], vec![4.0]),
            ],
            // disjoint coords across three fibers
            vec![
                Fiber::new(vec![0, 9], vec![1.0, 1.0]),
                Fiber::new(vec![4], vec![1.0]),
                Fiber::new(vec![2, 11], vec![1.0, 1.0]),
            ],
            // empty row
            vec![],
            // everything cancels
            vec![
                Fiber::new(vec![1, 2], vec![2.0, -3.0]),
                Fiber::new(vec![1, 2], vec![-2.0, 3.0]),
            ],
        ];
        let mut counter = MergeCounter::default();
        for fibers in &batches {
            assert_eq!(
                counter.merged_len(fibers),
                merge_fibers(fibers).len() as u64,
                "counter diverged from merge_fibers on {fibers:?}"
            );
        }
    }

    #[test]
    fn engine_path_matches_reference_closed_form() {
        // The engine-backed impls must reproduce the retained closed-form
        // accounting byte-for-byte, including tie-breaks on the critical
        // lane (equal-length lanes) and the zero-work batch.
        let wd = Watchdog::default_budget();
        let batches: Vec<Vec<Vec<Fiber>>> = vec![
            partial_rows(7, 0.3),
            partial_rows(8, 0.05),
            Vec::new(),
            // Two lanes tied for critical (rows 0 and 1, same length).
            vec![
                vec![Fiber::new(vec![0, 1, 2], vec![1.0; 3])],
                vec![Fiber::new(vec![0, 1, 2], vec![2.0; 3])],
            ],
        ];
        for rows in &batches {
            let rp = RowPartitionedMerger {
                lanes: 2,
                row_switch_cycles: 1,
            };
            assert_eq!(
                rp.simulate_budgeted(rows, &wd),
                reference::simulate_row_partitioned(&rp, rows, &wd)
            );
            let fl = FlattenedMerger::paper_config();
            assert_eq!(
                fl.simulate_budgeted(rows, &wd),
                reference::simulate_flattened(&fl, rows, &wd)
            );
        }
    }
}
