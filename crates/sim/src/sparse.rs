//! A lane-based model of sparse spatial arrays with zero skipping and load
//! balancing (Figures 6 and 10 of the paper).
//!
//! After sparsity pruning, each row of the spatial array processes the
//! non-zeros of its assigned tensor rows independently (the Figure 4
//! array). Imbalanced row lengths leave some lanes idle; `Shift`
//! load-balancing lets idle lanes take pending work, at row-group or
//! per-PE granularity.
//!
//! The production path is event-driven: lane state can only change when a
//! lane finishes a row, so the simulator skips time directly from one
//! completion to the next through the shared [`Engine`] instead of
//! ticking every cycle. The retained per-cycle implementation lives in
//! [`reference`] and the two are proven observationally equivalent (same
//! stats, breakdowns, and trace bytes under every seed and fault plan) by
//! the `engine_equivalence` test suite.

use stellar_area::TrafficCounts;
use stellar_tensor::CsrMatrix;

use crate::engine::{Engine, EngineStats};
use crate::error::{SimError, Watchdog};
use crate::fault::{FaultInjector, FaultPlan};
use crate::stats::{SimStats, Utilization};
use crate::trace::{CycleBreakdown, StallClass, Tracer};

/// How idle lanes may take work from loaded ones.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BalancePolicy {
    /// No load balancing: lanes only execute their own rows.
    None,
    /// Listing 3 / Figure 10a: an idle lane may take pending rows from its
    /// *adjacent* lane only (work moves between directly adjacent rows of
    /// the spatial array).
    AdjacentRows,
    /// Figure 10b / Listing 4: any idle lane may take pending rows from the
    /// most-loaded lane (maximum flexibility, maximum hardware cost).
    Global,
}

/// Parameters of the sparse array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SparseArrayParams {
    /// Number of PE lanes (array rows).
    pub lanes: usize,
    /// Fixed cycles to start a new row on a lane (fiber pointer setup).
    pub row_startup_cycles: u64,
    /// The balancing policy.
    pub balance: BalancePolicy,
}

/// The result of a sparse-array simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseSimResult {
    /// Overall statistics.
    pub stats: SimStats,
    /// Busy cycles per lane (for utilization heat maps).
    pub lane_busy: Vec<u64>,
    /// Rows executed per lane (tracks how much work moved).
    pub lane_rows: Vec<usize>,
}

impl SparseSimResult {
    /// The utilization fraction.
    pub fn utilization(&self) -> f64 {
        self.stats.utilization.fraction()
    }
}

/// One row of pending work.
#[derive(Clone, Copy, Debug)]
struct RowWork {
    nnz: u64,
}

/// Per-lane pending-row queues packed into one flat arena: lane `l` owns
/// `work[head[l]..tail[l]]`, rows in row order. Owners pop the front
/// (`head[l] += 1`), thieves the back (`tail[l] -= 1`) — both O(1) on a
/// single allocation, so dispatch touches three small contiguous arrays
/// instead of a `VecDeque` per lane.
struct PendingQueues {
    /// `nnz` of each pending row, grouped by owning lane.
    work: Vec<u64>,
    head: Vec<usize>,
    tail: Vec<usize>,
}

impl PendingQueues {
    /// Distributes row `r` of `b` to lane `r % lanes` (skipping empty
    /// rows), in row order within each lane.
    fn new(b: &CsrMatrix, lanes: usize) -> PendingQueues {
        // First pass counts rows per lane into `tail`, then a prefix sum
        // turns the counts into segment offsets.
        let mut head = vec![0usize; lanes];
        let mut tail = vec![0usize; lanes];
        for r in 0..b.rows() {
            if b.row_len(r) > 0 {
                tail[r % lanes] += 1;
            }
        }
        let mut offset = 0usize;
        for l in 0..lanes {
            head[l] = offset;
            offset += tail[l];
            tail[l] = head[l]; // fill pointer while loading; the real tail after
        }
        let mut work = vec![0u64; offset];
        for r in 0..b.rows() {
            let nnz = b.row_len(r) as u64;
            if nnz > 0 {
                let l = r % lanes;
                work[tail[l]] = nnz;
                tail[l] += 1;
            }
        }
        PendingQueues { work, head, tail }
    }

    #[inline]
    fn len(&self, l: usize) -> usize {
        self.tail[l] - self.head[l]
    }

    #[inline]
    fn total(&self) -> usize {
        (0..self.head.len()).map(|l| self.len(l)).sum()
    }

    #[inline]
    fn pop_front(&mut self, l: usize) -> Option<u64> {
        (self.head[l] < self.tail[l]).then(|| {
            let w = self.work[self.head[l]];
            self.head[l] += 1;
            w
        })
    }

    #[inline]
    fn pop_back(&mut self, l: usize) -> Option<u64> {
        (self.head[l] < self.tail[l]).then(|| {
            self.tail[l] -= 1;
            self.work[self.tail[l]]
        })
    }
}

/// Pops the `nnz` of the next row for idle lane `l`: its own queue's head
/// first, then a steal according to the policy. Queues hold rows in row
/// order, so the owner pops from the front and thieves steal from the
/// back — the same "leave the neighbour its current head, take its
/// farthest-future row" rule the per-cycle reference implements with
/// reversed `Vec`s, in O(1) instead of O(n) per steal.
fn next_work(
    pending: &mut PendingQueues,
    l: usize,
    lanes: usize,
    balance: BalancePolicy,
) -> Option<u64> {
    if let Some(w) = pending.pop_front(l) {
        return Some(w);
    }
    match balance {
        BalancePolicy::None => None,
        BalancePolicy::AdjacentRows => {
            // Steal from the more-loaded adjacent lane.
            let left = l.checked_sub(1);
            let right = if l + 1 < lanes { Some(l + 1) } else { None };
            let pick = [left, right]
                .into_iter()
                .flatten()
                .max_by_key(|&n| pending.len(n));
            pick.and_then(|n| {
                if pending.len(n) > 1 {
                    // Leave the neighbour its current head.
                    pending.pop_back(n)
                } else {
                    None
                }
            })
        }
        BalancePolicy::Global => {
            let victim = (0..lanes).max_by_key(|&n| pending.len(n));
            victim.and_then(|v| pending.pop_back(v))
        }
    }
}

/// Simulates processing every non-zero of `b` on the sparse array: row `r`
/// of `b` is initially assigned to lane `r % lanes`, each non-zero costs
/// one lane-cycle, and idle lanes may steal *pending* (unstarted) rows
/// according to the balancing policy — matching the paper's rule that only
/// "future work that has not yet begun" is shifted.
///
/// # Errors
///
/// Returns [`SimError::WatchdogExpired`] if the run exceeds the default
/// cycle budget. See [`simulate_sparse_matmul_faulty`] for explicit budgets
/// and fault injection (where a stuck lane can also yield
/// [`SimError::Deadlock`]).
pub fn simulate_sparse_matmul(
    b: &CsrMatrix,
    params: &SparseArrayParams,
) -> Result<SparseSimResult, SimError> {
    simulate_sparse_matmul_faulty(
        b,
        params,
        &mut FaultInjector::new(FaultPlan::none()),
        Watchdog::default_budget(),
    )
}

/// [`simulate_sparse_matmul`] under a fault plan and explicit watchdog.
///
/// A `stuck_lane` in the plan models a hard PE failure: the lane never
/// dispatches or advances. Whether the array survives depends on the
/// balancing policy — `Global` balancing reroutes the dead lane's pending
/// rows, while `None` (and `AdjacentRows`, which never steals a queue's
/// head) deadlocks, which this function detects structurally and reports as
/// [`SimError::Deadlock`] instead of spinning until the watchdog fires.
pub fn simulate_sparse_matmul_faulty(
    b: &CsrMatrix,
    params: &SparseArrayParams,
    injector: &mut FaultInjector,
    watchdog: Watchdog,
) -> Result<SparseSimResult, SimError> {
    simulate_sparse_matmul_traced(b, params, injector, watchdog, &mut Tracer::disabled())
}

/// [`simulate_sparse_matmul_faulty`] plus observability: each advanced
/// cycle is `Compute` when every lane is busy, `LoadImbalance` when only
/// some are (the Figure 6 pathology this model exists to expose), and
/// `Idle` when none are; when enabled, the tracer records one span per
/// executed row (track = lane index).
///
/// Dispatch decisions can only change when a lane completes a row (queues
/// never grow, so a steal that failed once keeps failing until a
/// completion frees a lane), so the loop advances the [`Engine`] straight
/// to the next completion and attributes the whole gap in one step. The
/// hot loop allocates nothing: lane state is struct-of-arrays
/// (`in_flight` durations indexed by lane) and the event queue is
/// preallocated to the lane count.
pub fn simulate_sparse_matmul_traced(
    b: &CsrMatrix,
    params: &SparseArrayParams,
    injector: &mut FaultInjector,
    watchdog: Watchdog,
    tracer: &mut Tracer,
) -> Result<SparseSimResult, SimError> {
    simulate_sparse_matmul_core(b, params, injector, watchdog, tracer, None)
}

/// [`simulate_sparse_matmul_traced`] plus engine introspection: returns
/// the simulation result together with the [`EngineStats`] of the run
/// (event-queue depth/compaction counters and the skip-ahead jump-length
/// histogram). The result itself is byte-identical to the unprofiled
/// path — the stats ride alongside, they never feed back.
///
/// # Errors
///
/// Identical to [`simulate_sparse_matmul_traced`].
pub fn simulate_sparse_matmul_profiled(
    b: &CsrMatrix,
    params: &SparseArrayParams,
    injector: &mut FaultInjector,
    watchdog: Watchdog,
    tracer: &mut Tracer,
) -> Result<(SparseSimResult, EngineStats), SimError> {
    let mut stats = EngineStats::default();
    let r = simulate_sparse_matmul_core(b, params, injector, watchdog, tracer, Some(&mut stats))?;
    Ok((r, stats))
}

fn simulate_sparse_matmul_core(
    b: &CsrMatrix,
    params: &SparseArrayParams,
    injector: &mut FaultInjector,
    watchdog: Watchdog,
    tracer: &mut Tracer,
    stats_out: Option<&mut EngineStats>,
) -> Result<SparseSimResult, SimError> {
    let lanes = params.lanes.max(1);
    // Pending rows per lane, in row order: owners pop the front, thieves
    // the back.
    let mut pending = PendingQueues::new(b, lanes);

    let mut lane_busy = vec![0u64; lanes];
    let mut lane_rows = vec![0usize; lanes];
    let total_nnz: u64 = (0..b.rows()).map(|r| b.row_len(r) as u64).sum();
    if total_nnz == 0 {
        return Ok(SparseSimResult {
            stats: SimStats::default(),
            lane_busy,
            lane_rows,
        });
    }

    let mut pending_rows = pending.total();
    // Struct-of-arrays lane state: duration of the in-flight row (0 = idle).
    let mut in_flight = vec![0u64; lanes];
    let mut busy_lanes = 0usize;
    let mut engine = Engine::with_capacity(watchdog, lanes);
    // Lanes worth a dispatch attempt this iteration. Queues never grow, so
    // a lane that once failed to find work fails forever (its own queue
    // stays empty and no victim's queue can regain length) — only lanes
    // freed by a completion need rescanning, which keeps each iteration
    // O(completions) instead of O(lanes).
    let mut dispatchable: Vec<usize> = (0..lanes).collect();

    loop {
        // Dispatch: fill freed lanes, in lane order (steals mutate the
        // queues mid-scan exactly as the per-cycle reference does).
        for &l in &dispatchable {
            if injector.lane_stuck(l) {
                continue;
            }
            if let Some(nnz) = next_work(&mut pending, l, lanes, params.balance) {
                pending_rows -= 1;
                let dur = nnz + params.row_startup_cycles;
                tracer.span(
                    l as u32,
                    "sparse_row",
                    engine.now(),
                    dur,
                    StallClass::Compute,
                );
                in_flight[l] = dur;
                busy_lanes += 1;
                engine.schedule_in(dur, l as u32);
            }
        }
        dispatchable.clear();

        // Terminate when no lane holds work and no rows are pending.
        if busy_lanes == 0 {
            if pending_rows == 0 {
                break;
            }
            // Work remains but nothing can take it: a structural deadlock
            // (e.g. a stuck lane owning rows no policy may steal).
            return Err(SimError::Deadlock {
                cycle: engine.now(),
                detail: format!(
                    "{pending_rows} rows pending, all lanes idle, no dispatch possible"
                ),
            });
        }

        // Skip ahead to the next completion. The busy set is constant
        // until then, so the whole gap carries one attribution class —
        // the same per-cycle classification the ticked loop applies.
        let class = if busy_lanes == lanes {
            StallClass::Compute
        } else {
            StallClass::LoadImbalance
        };
        // busy_lanes > 0, so at least one completion event is pending;
        // drain the batch that fires at the same cycle.
        if let Some(first) = engine.advance_to_next_event(class, "sparse lane loop")? {
            let mut ev = first;
            loop {
                let l = ev.key as usize;
                lane_busy[l] += in_flight[l];
                lane_rows[l] += 1;
                in_flight[l] = 0;
                busy_lanes -= 1;
                dispatchable.push(l);
                match engine.pop_due() {
                    Some(next) => ev = next,
                    None => break,
                }
            }
        }
        // Events pop in schedule order within a batch; dispatch walks
        // lanes in index order, as the per-cycle scan did.
        dispatchable.sort_unstable();
    }

    let cycles = engine.now();
    if let Some(out) = stats_out {
        *out = engine.stats();
    }
    let breakdown = engine.into_breakdown();
    breakdown.debug_assert_accounts_for(cycles, "sparse array");
    let busy: u64 = lane_busy.iter().sum();
    Ok(SparseSimResult {
        stats: SimStats {
            cycles,
            utilization: Utilization {
                busy,
                total: cycles * lanes as u64,
            },
            traffic: TrafficCounts {
                macs: total_nnz,
                sram_accesses: total_nnz + b.rows() as u64,
                regfile_accesses: 2 * total_nnz,
                dram_words: 0,
                pe_cycles: cycles * lanes as u64,
            },
            breakdown,
        },
        lane_busy,
        lane_rows,
    })
}

/// The retained per-cycle (ticked) implementation, kept verbatim as the
/// observational-equivalence oracle for the event-driven path above and
/// as the "pre" side of the `sim` benchmark suite. Advances one cycle at
/// a time with a full-lane scan per tick and O(n) `Vec::remove(0)`
/// steals — the cost profile the skip-ahead engine exists to remove.
pub mod reference {
    use super::*;

    /// Per-cycle counterpart of [`simulate_sparse_matmul_traced`]
    /// (identical observable behaviour, one loop iteration per cycle).
    ///
    /// # Errors
    ///
    /// Identical to [`simulate_sparse_matmul_traced`].
    pub fn simulate_sparse_matmul_traced(
        b: &CsrMatrix,
        params: &SparseArrayParams,
        injector: &mut FaultInjector,
        mut watchdog: Watchdog,
        tracer: &mut Tracer,
    ) -> Result<SparseSimResult, SimError> {
        let lanes = params.lanes.max(1);
        // Pending rows per lane, in row order.
        let mut pending: Vec<Vec<RowWork>> = vec![Vec::new(); lanes];
        for r in 0..b.rows() {
            let nnz = b.row_len(r) as u64;
            if nnz > 0 {
                pending[r % lanes].push(RowWork { nnz });
            }
        }
        for q in pending.iter_mut() {
            q.reverse(); // pop from the back = row order
        }

        let mut current: Vec<Option<(RowWork, u64)>> = vec![None; lanes]; // (row, remaining incl. startup)
        let mut lane_busy = vec![0u64; lanes];
        let mut lane_rows = vec![0usize; lanes];
        let mut cycles: u64 = 0;
        let mut breakdown = CycleBreakdown::new();
        let total_nnz: u64 = (0..b.rows()).map(|r| b.row_len(r) as u64).sum();
        if total_nnz == 0 {
            return Ok(SparseSimResult {
                stats: SimStats::default(),
                lane_busy,
                lane_rows,
            });
        }

        loop {
            // Dispatch: fill idle lanes.
            let mut dispatched = false;
            for l in 0..lanes {
                if current[l].is_some() || injector.lane_stuck(l) {
                    continue;
                }
                // Own queue first.
                let work = if let Some(w) = pending[l].pop() {
                    Some(w)
                } else {
                    match params.balance {
                        BalancePolicy::None => None,
                        BalancePolicy::AdjacentRows => {
                            // Steal from the more-loaded adjacent lane.
                            let left = l.checked_sub(1);
                            let right = if l + 1 < lanes { Some(l + 1) } else { None };
                            let pick = [left, right]
                                .into_iter()
                                .flatten()
                                .max_by_key(|&n| pending[n].len());
                            pick.and_then(|n| {
                                if pending[n].len() > 1 {
                                    // Leave the neighbour its current head.
                                    let w = pending[n].remove(0);
                                    Some(w)
                                } else {
                                    None
                                }
                            })
                        }
                        BalancePolicy::Global => {
                            let victim = (0..lanes).max_by_key(|&n| pending[n].len());
                            victim.and_then(|v| {
                                if !pending[v].is_empty() {
                                    Some(pending[v].remove(0))
                                } else {
                                    None
                                }
                            })
                        }
                    }
                };
                if let Some(w) = work {
                    let dur = w.nnz + params.row_startup_cycles;
                    tracer.span(l as u32, "sparse_row", cycles, dur, StallClass::Compute);
                    current[l] = Some((w, dur));
                    dispatched = true;
                }
            }

            let pending_rows: usize = pending.iter().map(|q| q.len()).sum();
            // Terminate when no lane holds work and no rows are pending.
            if current.iter().all(|c| c.is_none()) {
                if pending_rows == 0 {
                    break;
                }
                if !dispatched {
                    // Work remains but nothing can take it: a structural
                    // deadlock (e.g. a stuck lane owning rows no policy may
                    // steal).
                    return Err(SimError::Deadlock {
                        cycle: cycles,
                        detail: format!(
                            "{pending_rows} rows pending, all lanes idle, no dispatch possible"
                        ),
                    });
                }
            }

            // Advance one cycle.
            cycles += 1;
            watchdog.tick(1, "sparse lane loop")?;
            let mut busy_lanes = 0usize;
            for l in 0..lanes {
                if let Some((w, remaining)) = current[l].as_mut() {
                    lane_busy[l] += 1;
                    busy_lanes += 1;
                    *remaining -= 1;
                    if *remaining == 0 {
                        lane_rows[l] += 1;
                        let _ = w;
                        current[l] = None;
                    }
                }
            }
            // Cycle attribution: the array is only "computing" when every
            // lane is occupied; partially-occupied cycles are the load
            // imbalance this model exists to expose.
            breakdown.add(
                if busy_lanes == lanes {
                    StallClass::Compute
                } else if busy_lanes > 0 {
                    StallClass::LoadImbalance
                } else {
                    StallClass::Idle
                },
                1,
            );
        }

        breakdown.debug_assert_accounts_for(cycles, "sparse array");
        let busy: u64 = lane_busy.iter().sum();
        Ok(SparseSimResult {
            stats: SimStats {
                cycles,
                utilization: Utilization {
                    busy,
                    total: cycles * lanes as u64,
                },
                traffic: TrafficCounts {
                    macs: total_nnz,
                    sram_accesses: total_nnz + b.rows() as u64,
                    regfile_accesses: 2 * total_nnz,
                    dram_words: 0,
                    pe_cycles: cycles * lanes as u64,
                },
                breakdown,
            },
            lane_busy,
            lane_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_tensor::gen;

    fn params(balance: BalancePolicy) -> SparseArrayParams {
        SparseArrayParams {
            lanes: 8,
            row_startup_cycles: 1,
            balance,
        }
    }

    #[test]
    fn profiled_run_matches_traced_and_reports_engine_stats() {
        let b = gen::imbalanced(32, 256, 4, 128, 2, 7);
        let p = params(BalancePolicy::Global);
        let plain = simulate_sparse_matmul(&b, &p).unwrap();
        let (profiled, stats) = simulate_sparse_matmul_profiled(
            &b,
            &p,
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::default_budget(),
            &mut Tracer::disabled(),
        )
        .unwrap();
        // Profiling must not perturb the simulation in any observable way.
        assert_eq!(profiled, plain);
        // Every row completion is one scheduled + one popped event; jumps
        // are observed once per completion *batch* (same-cycle followers
        // drain through `pop_due`), so the jump count is bounded by rows.
        let total_rows: u64 = profiled.lane_rows.iter().map(|&r| r as u64).sum();
        assert_eq!(stats.events_scheduled, total_rows);
        assert_eq!(stats.events_popped, total_rows);
        assert!(stats.jump_cycles.count >= 1 && stats.jump_cycles.count <= total_rows);
        assert!(stats.max_pending >= 1 && stats.max_pending <= 8);
        // Deterministic: a second profiled run reports identical stats.
        let (_, again) = simulate_sparse_matmul_profiled(
            &b,
            &p,
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::default_budget(),
            &mut Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(stats, again);
    }

    #[test]
    fn balanced_matrix_is_fine_without_balancing() {
        let b = gen::uniform(64, 64, 0.2, 1);
        let none = simulate_sparse_matmul(&b, &params(BalancePolicy::None)).unwrap();
        assert!(none.utilization() > 0.7, "got {:.3}", none.utilization());
    }

    #[test]
    fn imbalance_tanks_unbalanced_utilization() {
        // Figure 6: a B matrix whose heavy rows all land on a few lanes.
        let b = gen::imbalanced(8, 256, 2, 128, 2, 7);
        let none = simulate_sparse_matmul(&b, &params(BalancePolicy::None)).unwrap();
        assert!(
            none.utilization() < 0.5,
            "imbalanced workload should idle lanes, got {:.3}",
            none.utilization()
        );
    }

    #[test]
    fn balancing_recovers_utilization() {
        let b = gen::imbalanced(32, 256, 4, 128, 2, 7);
        let none = simulate_sparse_matmul(&b, &params(BalancePolicy::None)).unwrap();
        let adj = simulate_sparse_matmul(&b, &params(BalancePolicy::AdjacentRows)).unwrap();
        let global = simulate_sparse_matmul(&b, &params(BalancePolicy::Global)).unwrap();
        assert!(adj.stats.cycles <= none.stats.cycles);
        assert!(global.stats.cycles <= adj.stats.cycles);
        assert!(
            global.utilization() > none.utilization(),
            "global {:.3} vs none {:.3}",
            global.utilization(),
            none.utilization()
        );
    }

    #[test]
    fn work_is_conserved() {
        let b = gen::power_law(100, 100, 6.0, 1.8, 3);
        let total_nnz: u64 = (0..100).map(|r| b.row_len(r) as u64).sum();
        for policy in [
            BalancePolicy::None,
            BalancePolicy::AdjacentRows,
            BalancePolicy::Global,
        ] {
            let r = simulate_sparse_matmul(&b, &params(policy)).unwrap();
            assert_eq!(r.stats.traffic.macs, total_nnz);
            let rows_done: usize = r.lane_rows.iter().sum();
            let nonempty_rows = (0..100).filter(|&r| b.row_len(r) > 0).count();
            assert_eq!(rows_done, nonempty_rows, "policy {policy:?}");
        }
    }

    #[test]
    fn global_moves_rows_across_lanes() {
        let b = gen::imbalanced(8, 256, 1, 200, 1, 9);
        let r = simulate_sparse_matmul(&b, &params(BalancePolicy::Global)).unwrap();
        // Lane 0 owns the heavy row; other lanes must have taken some rows.
        assert!(r.lane_rows.iter().skip(1).any(|&n| n > 0));
    }

    #[test]
    fn watchdog_bounds_the_lane_loop() {
        let b = gen::uniform(64, 64, 0.3, 2);
        let err = simulate_sparse_matmul_faulty(
            &b,
            &params(BalancePolicy::None),
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::with_budget(3),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::WatchdogExpired { budget: 3, .. }));
    }

    #[test]
    fn stuck_lane_deadlocks_without_balancing() {
        let b = gen::uniform(32, 64, 0.3, 4);
        let mut plan = FaultPlan::none();
        plan.stuck_lane = Some(0);
        let err = simulate_sparse_matmul_faulty(
            &b,
            &params(BalancePolicy::None),
            &mut FaultInjector::new(plan),
            Watchdog::default_budget(),
        )
        .unwrap_err();
        assert!(
            matches!(err, SimError::Deadlock { .. }),
            "a dead lane's rows are unreachable without balancing: {err:?}"
        );
    }

    #[test]
    fn global_balancing_tolerates_a_stuck_lane() {
        // Load balancing doubles as fault tolerance: with Global stealing,
        // the dead lane's pending rows reroute to live lanes and the run
        // completes with all work conserved.
        let b = gen::uniform(32, 64, 0.3, 4);
        let mut plan = FaultPlan::none();
        plan.stuck_lane = Some(0);
        let r = simulate_sparse_matmul_faulty(
            &b,
            &params(BalancePolicy::Global),
            &mut FaultInjector::new(plan),
            Watchdog::default_budget(),
        )
        .unwrap();
        assert_eq!(r.lane_rows[0], 0, "the stuck lane must do nothing");
        let rows_done: usize = r.lane_rows.iter().sum();
        let nonempty = (0..32).filter(|&row| b.row_len(row) > 0).count();
        assert_eq!(rows_done, nonempty);
    }

    #[test]
    fn imbalance_shows_up_in_the_breakdown() {
        let b = gen::imbalanced(8, 256, 2, 128, 2, 7);
        let mut tracer = Tracer::enabled();
        let r = simulate_sparse_matmul_traced(
            &b,
            &params(BalancePolicy::None),
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::default_budget(),
            &mut tracer,
        )
        .unwrap();
        assert_eq!(r.stats.breakdown.total(), r.stats.cycles);
        assert!(
            r.stats.breakdown.get(StallClass::LoadImbalance)
                > r.stats.breakdown.get(StallClass::Compute),
            "an imbalanced matrix must spend most cycles imbalanced: {:?}",
            r.stats.breakdown
        );
        // One span per executed non-empty row.
        let rows_done: usize = r.lane_rows.iter().sum();
        assert_eq!(tracer.len(), rows_done);
    }

    #[test]
    fn empty_matrix() {
        let b = gen::uniform(8, 8, 0.0, 1);
        let r = simulate_sparse_matmul(&b, &params(BalancePolicy::None)).unwrap();
        assert_eq!(r.stats.cycles, 0);
    }

    /// Pins the steal order of the pending queues: owners pop the
    /// lowest pending row, thieves take the victim's highest-numbered row
    /// (the farthest-future work), and `AdjacentRows` leaves a lone head
    /// in place. Breaking any of these reorders `lane_rows` here.
    #[test]
    fn steal_order_is_pinned() {
        // 3 lanes, rows r assigned r % 3. Row lengths chosen so lane 2
        // drains first and must steal.
        //   lane 0: rows 0 (9 nnz), 3 (9 nnz)
        //   lane 1: rows 1 (9 nnz), 4 (9 nnz)
        //   lane 2: row  2 (1 nnz)
        let mut m = stellar_tensor::DenseMatrix::zeros(5, 9);
        for (row, nnz) in [(0usize, 9usize), (1, 9), (2, 1), (3, 9), (4, 9)] {
            for c in 0..nnz {
                m.set(row, c, 1.0);
            }
        }
        let b = CsrMatrix::from_dense(&m);
        let p = SparseArrayParams {
            lanes: 3,
            row_startup_cycles: 0,
            balance: BalancePolicy::Global,
        };
        let r = simulate_sparse_matmul(&b, &p).unwrap();
        // t=0: lanes take rows 0, 1, 2. t=1: lane 2 finishes and steals
        // from the max-length victim — the scan's *last* max on ties is
        // lane 1, whose back row is row 4. t=9: lanes 0/1 finish; lane 0
        // pops its own row 3, lane 1 steals nothing (all queues empty).
        assert_eq!(r.lane_rows, vec![2, 1, 2], "rows executed per lane");
        // Lane 2: row 2 (1 cycle) + stolen row 4 (9 cycles).
        assert_eq!(r.lane_busy, vec![18, 9, 10]);
        // And the ticked reference agrees byte-for-byte.
        let ref_r = reference::simulate_sparse_matmul_traced(
            &b,
            &p,
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::default_budget(),
            &mut Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(r, ref_r);
    }

    /// The AdjacentRows variant of the pin: the thief prefers the
    /// more-loaded neighbour, takes that queue's *back* row (never the
    /// head), and a lone head is never stolen.
    #[test]
    fn adjacent_steal_order_is_pinned() {
        // 3 lanes. Lane 0 owns rows 0 (8 nnz), 3 (6), 6 (4); lane 1 owns
        // only row 1 (1 nnz); lane 2 owns rows 2 (8) and 5 (6). Lane 1
        // finishes first: its left neighbour's queue (len 2) beats the
        // right (len 1), and it must steal the back row 6 — not head row
        // 3. When lane 1 idles again at t=5, both neighbours hold a lone
        // head (len 1), so no further steal is allowed.
        let mut m = stellar_tensor::DenseMatrix::zeros(7, 8);
        for (row, nnz) in [(0usize, 8usize), (1, 1), (2, 8), (3, 6), (5, 6), (6, 4)] {
            for c in 0..nnz {
                m.set(row, c, 1.0);
            }
        }
        let b = CsrMatrix::from_dense(&m);
        let p = SparseArrayParams {
            lanes: 3,
            row_startup_cycles: 0,
            balance: BalancePolicy::AdjacentRows,
        };
        let r = simulate_sparse_matmul(&b, &p).unwrap();
        // Lane 0 runs rows 0 and 3 (8 + 6), lane 1 rows 1 and the stolen
        // row 6 (1 + 4), lane 2 rows 2 and 5 (8 + 6).
        assert_eq!(r.lane_rows, vec![2, 2, 2]);
        assert_eq!(r.lane_busy, vec![14, 5, 14]);
        let ref_r = reference::simulate_sparse_matmul_traced(
            &b,
            &p,
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::default_budget(),
            &mut Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(r, ref_r);
    }
}
