//! Cycle-level simulation of Stellar-generated accelerators.
//!
//! The paper evaluates generated RTL with FireSim (cycle-exact FPGA
//! simulation). This crate substitutes a software cycle-level model with
//! the same observables — cycles, PE utilization, throughput, and memory
//! traffic — driven by the same design parameters (array shape, dataflow,
//! sparsity skipping, load balancing granularity, DMA outstanding-request
//! count, DRAM latency/bandwidth):
//!
//! * [`systolic`] — a cycle-stepped weight-stationary systolic array that
//!   actually computes matmuls, validated against the dense golden model.
//! * [`gemm`] — a tile-level model for DNN-scale GEMMs (the Gemmini
//!   comparison of Figure 16a).
//! * [`sparse`] — a lane-based model of sparse spatial arrays with
//!   `Skip`-style zero skipping and `Shift`-style load balancing
//!   (Figures 6 and 10).
//! * [`merger`] — row-partitioned (GAMMA-like) and flattened (SpArch-like)
//!   merger models (Figures 18 and 19).
//! * [`dma`] — a DMA/DRAM model separating contiguous bursts from
//!   latency-bound scattered requests (the §VI-C bottleneck study), with an
//!   optional reliability layer (per-request failure, timeout, and
//!   retry-with-backoff).
//! * [`cache`] — a shared L2 model (the §IV-F Chipyard mitigation).
//! * [`engine`] — the shared event-driven skip-ahead kernel under the
//!   models above: a monotonic [`engine::EventQueue`] plus an
//!   [`engine::Engine`] clock that jumps straight to the next completion
//!   event, attributing and watchdog-charging the skipped cycles in one
//!   arithmetic step. Each model keeps its original per-cycle loop in a
//!   `reference` submodule as the observational-equivalence oracle.
//! * [`stats`] — shared counters and utilization accounting.
//! * [`fault`] — deterministic seed-driven fault injection (bit flips,
//!   dropped/duplicated DMA responses, stuck-at PEs, SRAM corruption) and
//!   the SECDED protection model.
//! * [`error`] — [`SimError`] and the [`Watchdog`] cycle budget that bounds
//!   every simulation loop: all `simulate_*` entry points return `Result`
//!   and terminate on deadlock or budget exhaustion instead of hanging.
//! * [`trace`] — the cycle-attribution layer: a shared stall taxonomy
//!   ([`trace::StallClass`]), per-run [`trace::CycleBreakdown`] whose
//!   categories sum exactly to the reported cycles, and a bounded
//!   ring-buffer [`trace::Tracer`] exporting Chrome `trace_event` JSON.
//! * [`metrics`] — a typed [`metrics::MetricsRegistry`]
//!   (counters/gauges/histograms with labels) with a stable JSON schema,
//!   used by the bench harness to emit one consolidated `metrics.json`.

pub mod cache;
pub mod dma;
pub mod engine;
pub mod error;
pub mod fault;
pub mod gemm;
pub mod merger;
pub mod metrics;
pub mod sparse;
pub mod stats;
pub mod systolic;
pub mod trace;

pub use cache::L2Cache;
pub use dma::{DmaModel, DmaTransferReport, DramParams, RetryPolicy};
pub use engine::{Engine, EngineStats, Event, EventQueue};
pub use error::{SimError, Watchdog, DEFAULT_WATCHDOG_BUDGET};
pub use fault::{DmaFault, EccMode, FaultCounts, FaultInjector, FaultPlan, RunOutcome};
pub use gemm::{gemm_cycles, layer_utilization, GemmBreakdown, GemmParams};
pub use merger::{rows_of_partials, FlattenedMerger, MergeStats, Merger, RowPartitionedMerger};
pub use metrics::{Histogram, MetricValue, MetricsRegistry, Stopwatch};
pub use sparse::{
    simulate_sparse_matmul, simulate_sparse_matmul_faulty, simulate_sparse_matmul_profiled,
    simulate_sparse_matmul_traced, BalancePolicy, SparseArrayParams, SparseSimResult,
};
pub use stats::{SimStats, Utilization};
pub use systolic::{
    simulate_os_matmul, simulate_os_matmul_faulty, simulate_os_matmul_traced, simulate_ws_matmul,
    simulate_ws_matmul_faulty, simulate_ws_matmul_traced, WsResult,
};
pub use trace::{
    breakdown_of_schedule, CycleBreakdown, StallClass, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY,
};
