//! A typed metrics registry with a stable JSON schema.
//!
//! The experiment harness used to hand-roll per-experiment result structs;
//! this registry replaces them with one vocabulary — counters (monotonic
//! `u64`), gauges (point-in-time `f64`), and histograms (count/sum/min/
//! max summaries) — each optionally labelled. Serialization order is
//! deterministic (sorted by name, then labels), so `out/metrics.json`
//! diffs cleanly between runs and machines, and downstream schema checks
//! (`jq -e`) can rely on the key layout.

// The observability layer must not itself panic in release builds.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable
    )
)]

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

use crate::trace::{CycleBreakdown, StallClass};

/// Number of log₂ magnitude buckets a [`Histogram`] tracks for its
/// percentile estimates.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A histogram summary: count, sum, min, max, plus a fixed array of
/// power-of-two magnitude buckets from which p50/p95/p99 are estimated.
/// Bucket `b` covers `[2^(b-1), 2^b)` (bucket 0 is everything below 1,
/// the last bucket everything from `2^30` up), so the struct stays
/// `Copy`, allocation-free, and mergeable by plain element-wise adds —
/// a coarse quantile sketch, not an exact one: an estimate is a bucket
/// upper edge clamped into `[min, max]`, so it is always a value-shaped
/// number and exact whenever all observations share a bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Observations per log₂ magnitude bucket.
    buckets: [u64; HISTOGRAM_BUCKETS],
}

/// The bucket an observation falls into: the bit length of its integer
/// part, capped to the last bucket. Negative and sub-1 values land in
/// bucket 0.
#[inline]
fn bucket_of(v: f64) -> usize {
    if v < 1.0 {
        return 0;
    }
    // Saturating for v beyond u64::MAX: `as` clamps, leading_zeros -> 0.
    let bits = 64 - (v as u64).leading_zeros() as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.buckets[bucket_of(v)] += 1;
    }

    /// The mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the magnitude
    /// buckets: the upper edge of the bucket holding the ⌈q·count⌉-th
    /// smallest observation, clamped into `[min, max]`. Returns 0 when
    /// empty — never NaN, so exported metrics stay valid JSON numbers.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let upper = if b == 0 {
                    1.0
                } else if b == HISTOGRAM_BUCKETS - 1 {
                    self.max
                } else {
                    (1u64 << b) as f64
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The estimated median (see [`Histogram::percentile`]).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// The estimated 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// The estimated 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Merges another histogram into this one. Merging an empty
    /// histogram is a no-op, and merging *into* an empty one copies the
    /// other side verbatim — so min/max never mix with the empty
    /// histogram's 0 sentinels and no NaN can be produced.
    pub fn merge(&mut self, o: &Histogram) {
        if o.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *o;
            return;
        }
        self.count += o.count;
        self.sum += o.sum;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        for (a, b) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *a += *b;
        }
    }
}

impl fmt::Display for Histogram {
    /// The text rendering used by profile reports:
    /// `n=12 mean=3.2 min=1 max=40 p50=4 p95=32 p99=40`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} min={} max={} p50={} p95={} p99={}",
            self.count,
            self.mean(),
            self.min,
            self.max,
            self.p50(),
            self.p95(),
            self.p99()
        )
    }
}

/// One metric's value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A distribution summary (boxed: the bucket array would otherwise
    /// inflate every registry entry to ~300 bytes).
    Histogram(Box<Histogram>),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// The identity of a metric: name plus sorted labels.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (snake_case by convention).
    pub name: String,
    /// Label pairs, kept sorted for deterministic serialization.
    pub labels: BTreeMap<String, String>,
}

impl MetricKey {
    /// Builds a key from a name and `(label, value)` pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

/// A registry of labelled counters, gauges, and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<MetricKey, MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `v` to the counter `name{labels}` (created at 0), saturating.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        let key = MetricKey::new(name, labels);
        match self.metrics.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c = c.saturating_add(v),
            other => *other = MetricValue::Counter(v),
        }
    }

    /// Sets the gauge `name{labels}` to `v`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.metrics
            .insert(MetricKey::new(name, labels), MetricValue::Gauge(v));
    }

    /// Records `v` into the histogram `name{labels}` (created empty).
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = MetricKey::new(name, labels);
        match self
            .metrics
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Box::default()))
        {
            MetricValue::Histogram(h) => h.observe(v),
            other => {
                let mut h = Histogram::default();
                h.observe(v);
                *other = MetricValue::Histogram(Box::new(h));
            }
        }
    }

    /// Merges a whole pre-aggregated [`Histogram`] into
    /// `name{labels}` — bucket-exact, unlike replaying observations
    /// through [`MetricsRegistry::observe`]. A non-histogram value under
    /// the key is replaced (the kind-mismatch rule of
    /// [`MetricsRegistry::merge`]).
    pub fn observe_histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        let key = MetricKey::new(name, labels);
        match self
            .metrics
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Box::default()))
        {
            MetricValue::Histogram(existing) => existing.merge(h),
            other => *other = MetricValue::Histogram(Box::new(*h)),
        }
    }

    /// Records every class of a [`CycleBreakdown`] as counters
    /// `<prefix>_cycles{class=..., labels...}` — the standard way an
    /// experiment publishes its cycle attribution.
    pub fn record_breakdown(
        &mut self,
        prefix: &str,
        labels: &[(&str, &str)],
        breakdown: &CycleBreakdown,
    ) {
        let name = format!("{prefix}_cycles");
        for class in StallClass::ALL {
            let mut all: Vec<(&str, &str)> = labels.to_vec();
            all.push(("class", class.name()));
            self.counter_add(&name, &all, breakdown.get(class));
        }
    }

    /// Looks up a metric.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.metrics.get(&MetricKey::new(name, labels))
    }

    /// The counter's value (0 when absent or not a counter).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Merges another registry: counters add (saturating), gauges take
    /// the other's value, histograms merge bucket-wise.
    ///
    /// **Kind-mismatch resolution rule** (pinned by tests): when the same
    /// key holds different metric kinds on the two sides — a counter
    /// merged into a histogram, a gauge into a counter, and so on — the
    /// *incoming* value replaces the existing one wholesale, exactly as a
    /// gauge would. Last writer wins; nothing is coerced or summed across
    /// kinds. A kind mismatch means two producers disagree about what the
    /// metric *is*, and silently combining a cycle count with a
    /// distribution would fabricate a number no one recorded — taking the
    /// newest registration keeps the registry self-consistent and the
    /// resolution order-dependent but deterministic for a fixed merge
    /// order (which every caller in this workspace has).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (key, value) in &other.metrics {
            match (self.metrics.get_mut(key), value) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => {
                    *a = a.saturating_add(*b)
                }
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
                (Some(slot), v) => *slot = v.clone(),
                (None, v) => {
                    self.metrics.insert(key.clone(), v.clone());
                }
            }
        }
    }

    /// Serializes the registry as a JSON array of metric objects, sorted
    /// by `(name, labels)`:
    ///
    /// ```json
    /// [{"name":"cycles","labels":{"class":"compute"},"type":"counter","value":42}, ...]
    /// ```
    pub fn to_json(&self) -> String {
        let mut s = String::from("[");
        for (n, (key, value)) in self.metrics.iter().enumerate() {
            if n > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"labels\":{{",
                escape(&key.name)
            ));
            for (m, (k, v)) in key.labels.iter().enumerate() {
                if m > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
            }
            s.push_str(&format!("}},\"type\":\"{}\",", value.type_name()));
            match value {
                MetricValue::Counter(c) => s.push_str(&format!("\"value\":{c}")),
                MetricValue::Gauge(g) => s.push_str(&format!("\"value\":{}", json_f64(*g))),
                MetricValue::Histogram(h) => s.push_str(&format!(
                    "\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}",
                    h.count,
                    json_f64(h.sum),
                    json_f64(h.min),
                    json_f64(h.max),
                    json_f64(h.p50()),
                    json_f64(h.p95()),
                    json_f64(h.p99())
                )),
            }
            s.push('}');
        }
        s.push(']');
        s
    }
}

/// Formats an `f64` as valid JSON (JSON has no NaN/Infinity: mapped to
/// null / ±1e308 sentinels so the document always parses).
pub fn json_f64(v: f64) -> String {
    if v.is_nan() {
        "null".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "1e308" } else { "-1e308" }.to_string()
    } else {
        // `{}` on f64 is shortest-round-trip: deterministic and parseable.
        let s = format!("{v}");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Wall-clock self-profiling: measures real time spent in named sections
/// of the harness (the simulator profiling itself, not the simulated
/// device) and publishes `wall_ms{section=...}` gauges.
#[derive(Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Milliseconds elapsed since start.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Stops and records `wall_ms{section=<section>}` into the registry.
    pub fn record(self, registry: &mut MetricsRegistry, section: &str) -> f64 {
        let ms = self.elapsed_ms();
        registry.gauge_set("wall_ms", &[("section", section)], ms);
        ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.counter_add("cycles", &[("model", "ws")], 10);
        r.counter_add("cycles", &[("model", "ws")], 5);
        r.counter_add("cycles", &[("model", "os")], 1);
        assert_eq!(r.counter("cycles", &[("model", "ws")]), 15);
        assert_eq!(r.counter("cycles", &[("model", "os")]), 1);
        assert_eq!(r.counter("cycles", &[]), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut r = MetricsRegistry::new();
        r.counter_add("x", &[("a", "1"), ("b", "2")], 3);
        r.counter_add("x", &[("b", "2"), ("a", "1")], 4);
        assert_eq!(r.len(), 1);
        assert_eq!(r.counter("x", &[("a", "1"), ("b", "2")]), 7);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::default();
        for v in [3.0, 1.0, 2.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        let mut other = Histogram::default();
        other.observe(10.0);
        h.merge(&other);
        assert_eq!(h.count, 4);
        assert_eq!(h.max, 10.0);
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("util", &[("model", "ws")], 0.75);
        r.counter_add("cycles", &[("model", "ws")], 42);
        r.observe("lat", &[], 2.5);
        let a = r.to_json();
        let b = r.clone().to_json();
        assert_eq!(a, b, "serialization must be deterministic");
        // Sorted by name: cycles < lat < util.
        let ic = a.find("\"name\":\"cycles\"").unwrap();
        let il = a.find("\"name\":\"lat\"").unwrap();
        let iu = a.find("\"name\":\"util\"").unwrap();
        assert!(ic < il && il < iu);
        assert!(a.contains("\"type\":\"counter\",\"value\":42"));
        assert!(a.contains("\"type\":\"gauge\",\"value\":0.75"));
        assert!(a.contains("\"type\":\"histogram\",\"count\":1"));
    }

    #[test]
    fn breakdown_recording() {
        let mut r = MetricsRegistry::new();
        let b = CycleBreakdown::new()
            .with(StallClass::Compute, 8)
            .with(StallClass::Fill, 2);
        r.record_breakdown("sim", &[("model", "ws")], &b);
        assert_eq!(
            r.counter("sim_cycles", &[("model", "ws"), ("class", "compute")]),
            8
        );
        assert_eq!(
            r.counter("sim_cycles", &[("model", "ws"), ("class", "idle")]),
            0
        );
        // All 10 classes registered (schema stability).
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn merge_semantics() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", &[], 1);
        a.gauge_set("g", &[], 1.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", &[], 2);
        b.gauge_set("g", &[], 5.0);
        b.observe("h", &[], 1.0);
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), 3);
        assert_eq!(a.get("g", &[]), Some(&MetricValue::Gauge(5.0)));
        assert!(matches!(a.get("h", &[]), Some(MetricValue::Histogram(_))));
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let mut h = Histogram::default();
        for v in 1..=100u32 {
            h.observe(v as f64);
        }
        // Bucket estimates: within a power of two of the exact quantile,
        // clamped to the observed range.
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!((32.0..=64.0).contains(&p50), "p50={p50}");
        assert!((64.0..=100.0).contains(&p95), "p95={p95}");
        assert!((64.0..=100.0).contains(&p99), "p99={p99}");
        assert!(p50 <= p95 && p95 <= p99, "quantiles must be monotone");
        // A single-valued distribution is estimated exactly.
        let mut single = Histogram::default();
        for _ in 0..10 {
            single.observe(7.0);
        }
        assert_eq!(single.p50(), 7.0);
        assert_eq!(single.p99(), 7.0);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero_not_nan() {
        let h = Histogram::default();
        for v in [h.p50(), h.p95(), h.p99(), h.mean()] {
            assert_eq!(v, 0.0);
            assert!(!v.is_nan());
        }
        // And the JSON export of an empty histogram has no null leaves.
        let mut r = MetricsRegistry::new();
        r.metrics.insert(
            MetricKey::new("empty", &[]),
            MetricValue::Histogram(Box::new(h)),
        );
        let json = r.to_json();
        assert!(
            !json.contains("null"),
            "empty histogram leaked null: {json}"
        );
        assert!(json.contains("\"p50\":0"));
    }

    #[test]
    fn percentile_rendering_in_text_and_json() {
        let mut h = Histogram::default();
        h.observe(4.0);
        let text = h.to_string();
        assert!(text.contains("p50=4") && text.contains("p99=4"), "{text}");
        let mut r = MetricsRegistry::new();
        r.observe("lat", &[], 4.0);
        let json = r.to_json();
        assert!(
            json.contains("\"p50\":4") && json.contains("\"p95\":4") && json.contains("\"p99\":4"),
            "{json}"
        );
    }

    #[test]
    fn merge_with_empty_sides_is_pinned() {
        // Empty into non-empty: no-op (min/max must not mix with the
        // empty histogram's 0 sentinels).
        let mut h = Histogram::default();
        h.observe(5.0);
        h.observe(9.0);
        let before = h;
        h.merge(&Histogram::default());
        assert_eq!(h, before);
        assert_eq!(h.min, 5.0);
        // Non-empty into empty: verbatim copy.
        let mut empty = Histogram::default();
        empty.merge(&before);
        assert_eq!(empty, before);
        // Empty into empty: still the all-zero summary.
        let mut e2 = Histogram::default();
        e2.merge(&Histogram::default());
        assert_eq!(e2, Histogram::default());
        assert!(!e2.mean().is_nan());
    }

    #[test]
    fn merge_accumulates_buckets_for_percentiles() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for _ in 0..95 {
            a.observe(2.0);
        }
        for _ in 0..5 {
            b.observe(1000.0);
        }
        a.merge(&b);
        assert_eq!(a.count, 100);
        assert!(a.p50() <= 4.0, "p50={} should stay near 2", a.p50());
        assert!(a.p99() >= 512.0, "p99={} should see the tail", a.p99());
    }

    #[test]
    fn merge_mismatched_kinds_takes_the_incoming_value() {
        // Counter merged into histogram.
        let mut a = MetricsRegistry::new();
        a.observe("x", &[], 2.5);
        let mut b = MetricsRegistry::new();
        b.counter_add("x", &[], 7);
        a.merge(&b);
        assert_eq!(a.get("x", &[]), Some(&MetricValue::Counter(7)));
        // Gauge merged into counter.
        let mut c = MetricsRegistry::new();
        c.counter_add("y", &[], 3);
        let mut d = MetricsRegistry::new();
        d.gauge_set("y", &[], 1.25);
        c.merge(&d);
        assert_eq!(c.get("y", &[]), Some(&MetricValue::Gauge(1.25)));
        // Histogram merged into gauge.
        let mut e = MetricsRegistry::new();
        e.gauge_set("z", &[], 9.0);
        let mut f = MetricsRegistry::new();
        f.observe("z", &[], 4.0);
        e.merge(&f);
        match e.get("z", &[]) {
            Some(MetricValue::Histogram(h)) => assert_eq!((h.count, h.max), (1, 4.0)),
            other => panic!("expected histogram after mismatch merge, got {other:?}"),
        }
    }

    #[test]
    fn json_f64_edge_cases() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "1e308");
        assert_eq!(json_f64(f64::NEG_INFINITY), "-1e308");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn stopwatch_records_gauge() {
        let mut r = MetricsRegistry::new();
        let sw = Stopwatch::start();
        let ms = sw.record(&mut r, "test");
        assert!(ms >= 0.0);
        assert!(matches!(
            r.get("wall_ms", &[("section", "test")]),
            Some(MetricValue::Gauge(_))
        ));
    }
}
