//! A cycle-stepped weight-stationary systolic array.
//!
//! This is the executable counterpart of the compiled weight-stationary
//! matmul design (Figure 2a's family): weights are pre-loaded into the PE
//! grid, activations are injected along one edge with a skew of one cycle
//! per row, and partial sums flow down and out the bottom. The simulator
//! advances register state cycle by cycle, so fill and drain latency appear
//! exactly as in hardware, and the computed product is checked against the
//! dense golden model in the tests.
//!
//! Unlike the lane models, a systolic step cannot be skipped — every PE's
//! registers move every cycle, and under fault injection every PE consults
//! the injector's RNG every step, so the draw order *is* the observable.
//! The performance win here is allocation-free stepping: the register
//! planes are flat row-major `Vec<f64>` buffers allocated once and
//! double-buffered with `mem::swap`, where the retained [`reference`]
//! implementation allocates two fresh `Vec<Vec<f64>>` grids per cycle.

use stellar_area::TrafficCounts;
use stellar_tensor::DenseMatrix;

use crate::error::{SimError, Watchdog};
use crate::fault::{FaultInjector, FaultPlan};
use crate::stats::{SimStats, Utilization};
use crate::trace::{CycleBreakdown, StallClass, Tracer};

/// The result of a cycle-stepped weight-stationary matmul.
#[derive(Clone, Debug, PartialEq)]
pub struct WsResult {
    /// The computed product.
    pub product: DenseMatrix,
    /// Simulation statistics.
    pub stats: SimStats,
}

/// Simulates `A(m×k) · B(k×n)` on a `k × n` grid of weight-stationary PEs
/// (one PE per element of `B`), cycle by cycle.
///
/// The array processes the whole `B` at once, so `k` and `n` are the array
/// dimensions; `m` streams through. Latency is `m + k + n` cycles plus
/// pipeline fill, matching the classic systolic schedule.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] if the shapes disagree, or
/// [`SimError::WatchdogExpired`] if the schedule exceeds the default cycle
/// budget (use [`simulate_ws_matmul_faulty`] to pick the budget).
pub fn simulate_ws_matmul(a: &DenseMatrix, b: &DenseMatrix) -> Result<WsResult, SimError> {
    simulate_ws_matmul_faulty(
        a,
        b,
        &mut FaultInjector::new(FaultPlan::none()),
        Watchdog::default_budget(),
    )
}

/// [`simulate_ws_matmul`] with fault injection and an explicit watchdog
/// budget: activations read at the array edge pass through the injector's
/// SRAM-corruption hook and every PE's partial-sum register through its
/// accumulator-upset hook.
pub fn simulate_ws_matmul_faulty(
    a: &DenseMatrix,
    b: &DenseMatrix,
    injector: &mut FaultInjector,
    watchdog: Watchdog,
) -> Result<WsResult, SimError> {
    simulate_ws_matmul_traced(a, b, injector, watchdog, &mut Tracer::disabled())
}

/// [`simulate_ws_matmul_faulty`] plus observability: every elapsed cycle
/// is attributed to a [`StallClass`] (preload and pre-activity skew are
/// `Fill`, any-PE-active steps are `Compute`, the tail is `Drain`) and,
/// when the tracer is enabled, per-row stream spans plus preload/drain
/// spans are recorded (track = A row index).
pub fn simulate_ws_matmul_traced(
    a: &DenseMatrix,
    b: &DenseMatrix,
    injector: &mut FaultInjector,
    mut watchdog: Watchdog,
    tracer: &mut Tracer,
) -> Result<WsResult, SimError> {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    if k != b.rows() {
        return Err(SimError::InvalidConfig(format!(
            "inner dimensions disagree: A is {m}x{k}, B is {}x{n}",
            b.rows()
        )));
    }
    if k == 0 || n == 0 {
        return Err(SimError::InvalidConfig("empty weight matrix".into()));
    }

    // PE state, flat row-major planes indexed [r * n + c], allocated once
    // and double-buffered: every slot is rewritten each step, so the swap
    // needs no clearing.
    let mut act = vec![0.0f64; k * n]; // activation entering PE (r, c)
    let mut psum = vec![0.0f64; k * n]; // psum leaving PE (r, c) downward
    let mut next_act = vec![0.0f64; k * n];
    let mut next_psum = vec![0.0f64; k * n];
    let mut product = DenseMatrix::zeros(m, n);

    let mut busy: u64 = 0;
    // Weight preload: one column of rows per cycle (k cycles).
    let preload_cycles = k as u64;

    // Stream phase: row i of A enters row 0..k of the array skewed; the
    // bottom of column c emits C[i][c] after the pipeline delay.
    // Total cycles: skew (k-1) + stream (m) + drain (k + 1).
    let total_steps = m + 2 * k + n;
    let mut breakdown = CycleBreakdown::new().with(StallClass::Fill, preload_cycles);
    tracer.span(0, "ws_preload", 0, preload_cycles, StallClass::Fill);
    for i in 0..m {
        // Row i of A is in flight from its skewed entry until it has
        // traversed the k array rows and n columns.
        tracer.span(
            i as u32,
            "ws_stream_row",
            preload_cycles + i as u64,
            (k + n) as u64,
            StallClass::Compute,
        );
    }
    let mut seen_activity = false;
    // On a fault-free plan the injector hooks are pure pass-throughs that
    // draw no RNG and touch no counters (`Rng64::chance(p)` returns early
    // for `p <= 0.0`), so the lane path below — which skips the hooks
    // entirely — is observationally identical to the scalar path. Faulty
    // plans must keep the scalar loop: its iteration order (r descending,
    // c ascending) *is* the RNG draw order.
    let fault_free = injector.plan().is_fault_free();
    // All-zero stand-in for the psum row above row 0, so the lane loop
    // reads `up[c]` unconditionally instead of branching on `r == 0`.
    let zero_row = vec![0.0f64; n];
    watchdog.tick(preload_cycles, "ws weight preload")?;
    for t in 0..total_steps {
        watchdog.tick(1, "ws stream loop")?;
        let mut step_busy = false;
        if fault_free {
            // SIMD-width fast path: the bulk of each PE row (c >= 1) reads
            // three contiguous slices (activations shifted by one, the
            // psum row above, the weight row) and runs a 4-wide unrolled
            // multiply-add lane. Each lane slot computes exactly the
            // scalar expression `p_in + a_in * w` for its own c — lanes
            // never reassociate across slots, so every f64 is
            // bit-identical to the scalar path (the [`reference`] oracle
            // tests pin this).
            for r in (0..k).rev() {
                let ro = r * n;
                let up: &[f64] = if r == 0 { &zero_row } else { &psum[ro - n..ro] };
                let b_row = b.row(r);
                let a_row = &act[ro..ro + n];
                // c == 0 edge: activation injected from A, skewed one
                // cycle per row.
                {
                    let i = t as isize - r as isize;
                    let a_in = if i >= 0 && (i as usize) < m {
                        a.at(i as usize, r)
                    } else {
                        0.0
                    };
                    let p_in = up[0];
                    if a_in != 0.0 || p_in != 0.0 {
                        busy += 1;
                        step_busy = true;
                    }
                    next_act[ro] = a_in;
                    next_psum[ro] = p_in + a_in * b_row[0];
                }
                let mut c = 1usize;
                while c + 4 <= n {
                    let (a0, a1, a2, a3) = (a_row[c - 1], a_row[c], a_row[c + 1], a_row[c + 2]);
                    let (p0, p1, p2, p3) = (up[c], up[c + 1], up[c + 2], up[c + 3]);
                    let (w0, w1, w2, w3) = (b_row[c], b_row[c + 1], b_row[c + 2], b_row[c + 3]);
                    next_act[ro + c] = a0;
                    next_act[ro + c + 1] = a1;
                    next_act[ro + c + 2] = a2;
                    next_act[ro + c + 3] = a3;
                    next_psum[ro + c] = p0 + a0 * w0;
                    next_psum[ro + c + 1] = p1 + a1 * w1;
                    next_psum[ro + c + 2] = p2 + a2 * w2;
                    next_psum[ro + c + 3] = p3 + a3 * w3;
                    let live = u64::from(a0 != 0.0 || p0 != 0.0)
                        + u64::from(a1 != 0.0 || p1 != 0.0)
                        + u64::from(a2 != 0.0 || p2 != 0.0)
                        + u64::from(a3 != 0.0 || p3 != 0.0);
                    if live != 0 {
                        busy += live;
                        step_busy = true;
                    }
                    c += 4;
                }
                while c < n {
                    let a_in = a_row[c - 1];
                    let p_in = up[c];
                    if a_in != 0.0 || p_in != 0.0 {
                        busy += 1;
                        step_busy = true;
                    }
                    next_act[ro + c] = a_in;
                    next_psum[ro + c] = p_in + a_in * b_row[c];
                    c += 1;
                }
                // Bottom-row output collection as a postpass over the
                // valid c range instead of a branch per PE: C[i][c] with
                // i = t - (k-1) - c lands in [0, m).
                if r == k - 1 {
                    let base = t as isize - (k - 1) as isize;
                    let c_lo = (base - m as isize + 1).max(0);
                    let c_hi = base.min(n as isize - 1);
                    let mut c = c_lo;
                    while c <= c_hi {
                        product.set((base - c) as usize, c as usize, next_psum[ro + c as usize]);
                        c += 1;
                    }
                }
            }
        } else {
            // Advance from the bottom row upward so values move one PE per
            // cycle. Iteration order (r descending, c ascending) is the RNG
            // draw order under fault injection and must not change.
            for r in (0..k).rev() {
                for c in 0..n {
                    // Activation arrives from the left (c == 0 edge injects).
                    let a_in = if c == 0 {
                        // Row r receives A[i][r] at time t = i + r (skewed).
                        let i = t as isize - r as isize;
                        if i >= 0 && (i as usize) < m {
                            // Edge injection is an SRAM read: corruptible.
                            injector.corrupt_sram_read(a.at(i as usize, r))
                        } else {
                            0.0
                        }
                    } else {
                        act[r * n + c - 1]
                    };
                    // Partial sum arrives from above.
                    let p_in = if r == 0 { 0.0 } else { psum[(r - 1) * n + c] };
                    let w = b.at(r, c);
                    let p_out = injector.perturb_accumulator(p_in + a_in * w);
                    if a_in != 0.0 || p_in != 0.0 {
                        busy += 1;
                        step_busy = true;
                    }
                    next_act[r * n + c] = a_in;
                    next_psum[r * n + c] = p_out;
                    // The bottom row's output is C[i][c] for the activation row
                    // that entered k + c cycles ago... handled below by
                    // collecting when r == k-1.
                    if r == k - 1 {
                        let i = t as isize - (k - 1) as isize - c as isize;
                        if i >= 0 && (i as usize) < m {
                            product.set(i as usize, c, p_out);
                        }
                    }
                }
            }
        }
        std::mem::swap(&mut act, &mut next_act);
        std::mem::swap(&mut psum, &mut next_psum);
        // Cycle attribution: while any PE holds live data the array is
        // computing; a quiet step before first activity is pipeline fill
        // (skew), after last activity it is drain.
        if step_busy {
            seen_activity = true;
            breakdown.add(StallClass::Compute, 1);
        } else if seen_activity {
            breakdown.add(StallClass::Drain, 1);
        } else {
            breakdown.add(StallClass::Fill, 1);
        }
    }

    let cycles = preload_cycles + total_steps as u64;
    breakdown.debug_assert_accounts_for(cycles, "ws systolic");
    let macs = (m * n * k) as u64;
    Ok(WsResult {
        product,
        stats: SimStats {
            cycles,
            utilization: Utilization {
                busy,
                total: cycles * (k * n) as u64,
            },
            traffic: TrafficCounts {
                macs,
                sram_accesses: (m * k + k * n + m * n) as u64,
                regfile_accesses: 2 * macs,
                dram_words: 0,
                pe_cycles: cycles * (k * n) as u64,
            },
            breakdown,
        },
    })
}

/// Simulates `A(m×k) · B(k×n)` on an `m × n` grid of *output-stationary*
/// PEs (one PE per element of `C`), cycle by cycle — the Figure 2b
/// dataflow, as a counterpart to the weight-stationary array.
///
/// `A` rows enter from the left (skewed one cycle per row), `B` columns
/// enter from the top (skewed one cycle per column), and each PE
/// accumulates its dot product in place; results drain at the end.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] if the shapes disagree, or
/// [`SimError::WatchdogExpired`] past the default cycle budget.
pub fn simulate_os_matmul(a: &DenseMatrix, b: &DenseMatrix) -> Result<WsResult, SimError> {
    simulate_os_matmul_faulty(
        a,
        b,
        &mut FaultInjector::new(FaultPlan::none()),
        Watchdog::default_budget(),
    )
}

/// [`simulate_os_matmul`] with fault injection and an explicit watchdog
/// budget; the stationary accumulators pass through the injector's upset
/// hook every cycle they update.
pub fn simulate_os_matmul_faulty(
    a: &DenseMatrix,
    b: &DenseMatrix,
    injector: &mut FaultInjector,
    watchdog: Watchdog,
) -> Result<WsResult, SimError> {
    simulate_os_matmul_traced(a, b, injector, watchdog, &mut Tracer::disabled())
}

/// [`simulate_os_matmul_faulty`] plus observability: any-PE-active steps
/// are `Compute`, quiet steps before first activity are `Fill`, the tail
/// and the end-of-run result drain are `Drain`; when enabled, the tracer
/// records one accumulate span per output row (track = C row index).
pub fn simulate_os_matmul_traced(
    a: &DenseMatrix,
    b: &DenseMatrix,
    injector: &mut FaultInjector,
    mut watchdog: Watchdog,
    tracer: &mut Tracer,
) -> Result<WsResult, SimError> {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    if k != b.rows() {
        return Err(SimError::InvalidConfig(format!(
            "inner dimensions disagree: A is {m}x{k}, B is {}x{n}",
            b.rows()
        )));
    }
    if m == 0 || n == 0 {
        return Err(SimError::InvalidConfig("empty output matrix".into()));
    }

    // Flat row-major planes indexed [i * n + j], allocated once; the
    // moving registers double-buffer, the accumulators update in place.
    let mut a_reg = vec![0.0f64; m * n]; // a value flowing right
    let mut b_reg = vec![0.0f64; m * n]; // b value flowing down
    let mut next_a = vec![0.0f64; m * n];
    let mut next_b = vec![0.0f64; m * n];
    let mut acc = vec![0.0f64; m * n]; // stationary accumulators
    let mut busy = 0u64;

    // Element A[i][kk] enters row i at t = i + kk; element B[kk][j] enters
    // column j at t = j + kk; they meet at PE (i, j) at t = i + j + kk.
    let total_steps = k + m + n;
    let mut breakdown = CycleBreakdown::new();
    let mut seen_activity = false;
    for i in 0..m {
        // Row i's accumulators are live from the first A arrival (t = i)
        // until the last k index has flowed across all n columns.
        tracer.span(
            i as u32,
            "os_accumulate_row",
            i as u64,
            (k + n) as u64,
            StallClass::Compute,
        );
    }
    // Fault-free plans draw no RNG and bump no counters in the injector
    // hooks, so the lane path below may skip them and reorder freely; a
    // faulty plan keeps the scalar loop whose (i, j ascending) order is
    // the RNG draw order.
    let fault_free = injector.plan().is_fault_free();
    for t in 0..total_steps {
        watchdog.tick(1, "os stream loop")?;
        let mut step_busy = false;
        if fault_free {
            // SIMD-width fast path. The accumulator update is made
            // *unconditional* (`acc + a_in * b_in` even when both inputs
            // are zero), which is bit-identical to the guarded scalar
            // update: `acc` can never be `-0.0` (it starts at `+0.0`, and
            // under round-to-nearest a sum is `-0.0` only when both
            // addends are `-0.0`), so adding the `±0.0` product of two
            // zero inputs returns `acc` exactly. Busy accounting keeps
            // the original guard. Lanes never reassociate across slots.
            for i in 0..m {
                let io = i * n;
                // j == 0 edge: A enters from the left.
                {
                    let kk = t as isize - i as isize;
                    let a_in = if kk >= 0 && (kk as usize) < k {
                        a.at(i, kk as usize)
                    } else {
                        0.0
                    };
                    let b_in = if i == 0 {
                        let kk = t as isize;
                        if (kk as usize) < k {
                            b.at(kk as usize, 0)
                        } else {
                            0.0
                        }
                    } else {
                        b_reg[io - n]
                    };
                    if a_in != 0.0 || b_in != 0.0 {
                        busy += 1;
                        step_busy = true;
                    }
                    acc[io] += a_in * b_in;
                    next_a[io] = a_in;
                    next_b[io] = b_in;
                }
                if i == 0 {
                    // Top row: B still enters from the edge, so the b_in
                    // load is not a contiguous slice — keep it scalar.
                    for j in 1..n {
                        let a_in = a_reg[j - 1];
                        let kk = t as isize - j as isize;
                        let b_in = if kk >= 0 && (kk as usize) < k {
                            b.at(kk as usize, j)
                        } else {
                            0.0
                        };
                        if a_in != 0.0 || b_in != 0.0 {
                            busy += 1;
                            step_busy = true;
                        }
                        acc[j] += a_in * b_in;
                        next_a[j] = a_in;
                        next_b[j] = b_in;
                    }
                    continue;
                }
                // Bulk j in 1..n: both operands stream from registers —
                // a shifted by one column, b from the row above.
                let a_row = &a_reg[io..io + n];
                let b_up = &b_reg[io - n..io];
                let mut j = 1usize;
                while j + 4 <= n {
                    let (a0, a1, a2, a3) = (a_row[j - 1], a_row[j], a_row[j + 1], a_row[j + 2]);
                    let (b0, b1, b2, b3) = (b_up[j], b_up[j + 1], b_up[j + 2], b_up[j + 3]);
                    acc[io + j] += a0 * b0;
                    acc[io + j + 1] += a1 * b1;
                    acc[io + j + 2] += a2 * b2;
                    acc[io + j + 3] += a3 * b3;
                    next_a[io + j] = a0;
                    next_a[io + j + 1] = a1;
                    next_a[io + j + 2] = a2;
                    next_a[io + j + 3] = a3;
                    next_b[io + j] = b0;
                    next_b[io + j + 1] = b1;
                    next_b[io + j + 2] = b2;
                    next_b[io + j + 3] = b3;
                    let live = u64::from(a0 != 0.0 || b0 != 0.0)
                        + u64::from(a1 != 0.0 || b1 != 0.0)
                        + u64::from(a2 != 0.0 || b2 != 0.0)
                        + u64::from(a3 != 0.0 || b3 != 0.0);
                    if live != 0 {
                        busy += live;
                        step_busy = true;
                    }
                    j += 4;
                }
                while j < n {
                    let a_in = a_row[j - 1];
                    let b_in = b_up[j];
                    if a_in != 0.0 || b_in != 0.0 {
                        busy += 1;
                        step_busy = true;
                    }
                    acc[io + j] += a_in * b_in;
                    next_a[io + j] = a_in;
                    next_b[io + j] = b_in;
                    j += 1;
                }
            }
        } else {
            // Iteration order (i, j ascending) is the RNG draw order under
            // fault injection and must not change.
            for i in 0..m {
                for j in 0..n {
                    let a_in = if j == 0 {
                        let kk = t as isize - i as isize;
                        if kk >= 0 && (kk as usize) < k {
                            a.at(i, kk as usize)
                        } else {
                            0.0
                        }
                    } else {
                        a_reg[i * n + j - 1]
                    };
                    let b_in = if i == 0 {
                        let kk = t as isize - j as isize;
                        if kk >= 0 && (kk as usize) < k {
                            b.at(kk as usize, j)
                        } else {
                            0.0
                        }
                    } else {
                        b_reg[(i - 1) * n + j]
                    };
                    // Alignment: at PE (i, j), a_in arrived after j hops and
                    // b_in after i hops; a_in carries A[i][t - i - j] and b_in
                    // carries B[t - i - j][j] — the matching k index.
                    if a_in != 0.0 || b_in != 0.0 {
                        busy += 1;
                        step_busy = true;
                        acc[i * n + j] = injector.perturb_accumulator(acc[i * n + j] + a_in * b_in);
                    }
                    next_a[i * n + j] = a_in;
                    next_b[i * n + j] = b_in;
                }
            }
        }
        std::mem::swap(&mut a_reg, &mut next_a);
        std::mem::swap(&mut b_reg, &mut next_b);
        if step_busy {
            seen_activity = true;
            breakdown.add(StallClass::Compute, 1);
        } else if seen_activity {
            breakdown.add(StallClass::Drain, 1);
        } else {
            breakdown.add(StallClass::Fill, 1);
        }
    }

    let mut product = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            product.set(i, j, acc[i * n + j]);
        }
    }
    // Drain: one cycle per output column through the edge ports.
    let cycles = (total_steps + n) as u64;
    breakdown.add(StallClass::Drain, n as u64);
    tracer.span(
        0,
        "os_drain",
        total_steps as u64,
        n as u64,
        StallClass::Drain,
    );
    breakdown.debug_assert_accounts_for(cycles, "os systolic");
    watchdog.tick(n as u64, "os drain")?;
    let macs = (m * n * k) as u64;
    Ok(WsResult {
        product,
        stats: SimStats {
            cycles,
            utilization: Utilization {
                busy,
                total: cycles * (m * n) as u64,
            },
            traffic: TrafficCounts {
                macs,
                sram_accesses: (m * k + k * n + m * n) as u64,
                regfile_accesses: 2 * macs,
                dram_words: 0,
                pe_cycles: cycles * (m * n) as u64,
            },
            breakdown,
        },
    })
}

/// The retained per-cycle implementations with nested-`Vec` PE grids and
/// two fresh grid allocations per step — the observational-equivalence
/// oracle for the flat-buffer paths above and the "pre" side of the `sim`
/// benchmark suite.
pub mod reference {
    use super::*;

    /// Allocation-per-step counterpart of [`simulate_ws_matmul_traced`]
    /// (identical observable behaviour).
    ///
    /// # Errors
    ///
    /// Identical to [`simulate_ws_matmul_traced`].
    pub fn simulate_ws_matmul_traced(
        a: &DenseMatrix,
        b: &DenseMatrix,
        injector: &mut FaultInjector,
        mut watchdog: Watchdog,
        tracer: &mut Tracer,
    ) -> Result<WsResult, SimError> {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        if k != b.rows() {
            return Err(SimError::InvalidConfig(format!(
                "inner dimensions disagree: A is {m}x{k}, B is {}x{n}",
                b.rows()
            )));
        }
        if k == 0 || n == 0 {
            return Err(SimError::InvalidConfig("empty weight matrix".into()));
        }

        // PE state: stationary weight, activation register, psum register.
        let mut act = vec![vec![0.0f64; n]; k]; // act[r][c]: activation entering PE (r, c)
        let mut psum = vec![vec![0.0f64; n]; k]; // psum leaving PE (r, c) downward
        let mut product = DenseMatrix::zeros(m, n);

        let mut busy: u64 = 0;
        // Weight preload: one column of rows per cycle (k cycles).
        let preload_cycles = k as u64;

        // Stream phase: row i of A enters row 0..k of the array skewed; the
        // bottom of column c emits C[i][c] after the pipeline delay.
        // Total cycles: skew (k-1) + stream (m) + drain (k + 1).
        let total_steps = m + 2 * k + n;
        let mut breakdown = CycleBreakdown::new().with(StallClass::Fill, preload_cycles);
        tracer.span(0, "ws_preload", 0, preload_cycles, StallClass::Fill);
        for i in 0..m {
            // Row i of A is in flight from its skewed entry until it has
            // traversed the k array rows and n columns.
            tracer.span(
                i as u32,
                "ws_stream_row",
                preload_cycles + i as u64,
                (k + n) as u64,
                StallClass::Compute,
            );
        }
        let mut seen_activity = false;
        watchdog.tick(preload_cycles, "ws weight preload")?;
        for t in 0..total_steps {
            watchdog.tick(1, "ws stream loop")?;
            let mut step_busy = false;
            // Advance from the bottom row upward so values move one PE per
            // cycle.
            let mut next_act = vec![vec![0.0f64; n]; k];
            let mut next_psum = vec![vec![0.0f64; n]; k];
            for r in (0..k).rev() {
                for c in 0..n {
                    // Activation arrives from the left (c == 0 edge injects).
                    let a_in = if c == 0 {
                        // Row r receives A[i][r] at time t = i + r (skewed).
                        let i = t as isize - r as isize;
                        if i >= 0 && (i as usize) < m {
                            // Edge injection is an SRAM read: corruptible.
                            injector.corrupt_sram_read(a.at(i as usize, r))
                        } else {
                            0.0
                        }
                    } else {
                        act[r][c - 1]
                    };
                    // Partial sum arrives from above.
                    let p_in = if r == 0 { 0.0 } else { psum[r - 1][c] };
                    let w = b.at(r, c);
                    let p_out = injector.perturb_accumulator(p_in + a_in * w);
                    if a_in != 0.0 || p_in != 0.0 {
                        busy += 1;
                        step_busy = true;
                    }
                    next_act[r][c] = a_in;
                    next_psum[r][c] = p_out;
                    // The bottom row's output is C[i][c] for the activation
                    // row that entered k + c cycles ago... handled below by
                    // collecting when r == k-1.
                    if r == k - 1 {
                        let i = t as isize - (k - 1) as isize - c as isize;
                        if i >= 0 && (i as usize) < m {
                            product.set(i as usize, c, p_out);
                        }
                    }
                }
            }
            act = next_act;
            psum = next_psum;
            // Cycle attribution: while any PE holds live data the array is
            // computing; a quiet step before first activity is pipeline fill
            // (skew), after last activity it is drain.
            if step_busy {
                seen_activity = true;
                breakdown.add(StallClass::Compute, 1);
            } else if seen_activity {
                breakdown.add(StallClass::Drain, 1);
            } else {
                breakdown.add(StallClass::Fill, 1);
            }
        }

        let cycles = preload_cycles + total_steps as u64;
        breakdown.debug_assert_accounts_for(cycles, "ws systolic");
        let macs = (m * n * k) as u64;
        Ok(WsResult {
            product,
            stats: SimStats {
                cycles,
                utilization: Utilization {
                    busy,
                    total: cycles * (k * n) as u64,
                },
                traffic: TrafficCounts {
                    macs,
                    sram_accesses: (m * k + k * n + m * n) as u64,
                    regfile_accesses: 2 * macs,
                    dram_words: 0,
                    pe_cycles: cycles * (k * n) as u64,
                },
                breakdown,
            },
        })
    }

    /// Allocation-per-step counterpart of [`simulate_os_matmul_traced`]
    /// (identical observable behaviour).
    ///
    /// # Errors
    ///
    /// Identical to [`simulate_os_matmul_traced`].
    pub fn simulate_os_matmul_traced(
        a: &DenseMatrix,
        b: &DenseMatrix,
        injector: &mut FaultInjector,
        mut watchdog: Watchdog,
        tracer: &mut Tracer,
    ) -> Result<WsResult, SimError> {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        if k != b.rows() {
            return Err(SimError::InvalidConfig(format!(
                "inner dimensions disagree: A is {m}x{k}, B is {}x{n}",
                b.rows()
            )));
        }
        if m == 0 || n == 0 {
            return Err(SimError::InvalidConfig("empty output matrix".into()));
        }

        let mut a_reg = vec![vec![0.0f64; n]; m]; // a value flowing right
        let mut b_reg = vec![vec![0.0f64; n]; m]; // b value flowing down
        let mut acc = vec![vec![0.0f64; n]; m]; // stationary accumulators
        let mut busy = 0u64;

        // Element A[i][kk] enters row i at t = i + kk; element B[kk][j]
        // enters column j at t = j + kk; they meet at PE (i, j) at
        // t = i + j + kk.
        let total_steps = k + m + n;
        let mut breakdown = CycleBreakdown::new();
        let mut seen_activity = false;
        for i in 0..m {
            // Row i's accumulators are live from the first A arrival (t = i)
            // until the last k index has flowed across all n columns.
            tracer.span(
                i as u32,
                "os_accumulate_row",
                i as u64,
                (k + n) as u64,
                StallClass::Compute,
            );
        }
        for t in 0..total_steps {
            watchdog.tick(1, "os stream loop")?;
            let mut step_busy = false;
            let mut next_a = vec![vec![0.0f64; n]; m];
            let mut next_b = vec![vec![0.0f64; n]; m];
            for i in 0..m {
                for j in 0..n {
                    let a_in = if j == 0 {
                        let kk = t as isize - i as isize;
                        if kk >= 0 && (kk as usize) < k {
                            a.at(i, kk as usize)
                        } else {
                            0.0
                        }
                    } else {
                        a_reg[i][j - 1]
                    };
                    let b_in = if i == 0 {
                        let kk = t as isize - j as isize;
                        if kk >= 0 && (kk as usize) < k {
                            b.at(kk as usize, j)
                        } else {
                            0.0
                        }
                    } else {
                        b_reg[i - 1][j]
                    };
                    // Alignment: at PE (i, j), a_in arrived after j hops and
                    // b_in after i hops; a_in carries A[i][t - i - j] and
                    // b_in carries B[t - i - j][j] — the matching k index.
                    if a_in != 0.0 || b_in != 0.0 {
                        busy += 1;
                        step_busy = true;
                        acc[i][j] = injector.perturb_accumulator(acc[i][j] + a_in * b_in);
                    }
                    next_a[i][j] = a_in;
                    next_b[i][j] = b_in;
                }
            }
            a_reg = next_a;
            b_reg = next_b;
            if step_busy {
                seen_activity = true;
                breakdown.add(StallClass::Compute, 1);
            } else if seen_activity {
                breakdown.add(StallClass::Drain, 1);
            } else {
                breakdown.add(StallClass::Fill, 1);
            }
        }

        let mut product = DenseMatrix::zeros(m, n);
        for (i, row) in acc.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                product.set(i, j, v);
            }
        }
        // Drain: one cycle per output column through the edge ports.
        let cycles = (total_steps + n) as u64;
        breakdown.add(StallClass::Drain, n as u64);
        tracer.span(
            0,
            "os_drain",
            total_steps as u64,
            n as u64,
            StallClass::Drain,
        );
        breakdown.debug_assert_accounts_for(cycles, "os systolic");
        watchdog.tick(n as u64, "os drain")?;
        let macs = (m * n * k) as u64;
        Ok(WsResult {
            product,
            stats: SimStats {
                cycles,
                utilization: Utilization {
                    busy,
                    total: cycles * (m * n) as u64,
                },
                traffic: TrafficCounts {
                    macs,
                    sram_accesses: (m * k + k * n + m * n) as u64,
                    regfile_accesses: 2 * macs,
                    dram_words: 0,
                    pe_cycles: cycles * (m * n) as u64,
                },
                breakdown,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_tensor::gen;

    #[test]
    fn computes_correct_product() {
        let a = gen::dense(5, 4, 1);
        let b = gen::dense(4, 3, 2);
        let r = simulate_ws_matmul(&a, &b).unwrap();
        assert!(
            r.product.approx_eq(&a.matmul(&b), 1e-9),
            "systolic result diverges from golden matmul"
        );
    }

    #[test]
    fn identity_weights() {
        let a = gen::dense(6, 3, 3);
        let id = DenseMatrix::identity(3);
        let r = simulate_ws_matmul(&a, &id).unwrap();
        assert!(r.product.approx_eq(&a, 1e-12));
    }

    #[test]
    fn cycle_count_has_fill_and_drain() {
        let a = gen::dense(8, 4, 4);
        let b = gen::dense(4, 4, 5);
        let r = simulate_ws_matmul(&a, &b).unwrap();
        // Preload k + stream m + skew/drain ~ 2k + n.
        assert_eq!(r.stats.cycles, 4 + (8 + 8 + 4) as u64);
        assert_eq!(r.stats.traffic.macs, 8 * 4 * 4);
    }

    #[test]
    fn utilization_improves_with_longer_streams() {
        let b = gen::dense(4, 4, 7);
        let short = simulate_ws_matmul(&gen::dense(2, 4, 8), &b).unwrap();
        let long = simulate_ws_matmul(&gen::dense(64, 4, 9), &b).unwrap();
        assert!(
            long.stats.utilization.fraction() > short.stats.utilization.fraction(),
            "longer streams must amortize fill/drain"
        );
    }

    #[test]
    fn rectangular_shapes() {
        let a = gen::dense(3, 5, 10);
        let b = gen::dense(5, 2, 11);
        let r = simulate_ws_matmul(&a, &b).unwrap();
        assert!(r.product.approx_eq(&a.matmul(&b), 1e-9));
    }

    #[test]
    fn output_stationary_correct() {
        let a = gen::dense(5, 4, 20);
        let b = gen::dense(4, 3, 21);
        let r = simulate_os_matmul(&a, &b).unwrap();
        assert!(
            r.product.approx_eq(&a.matmul(&b), 1e-9),
            "output-stationary result diverges from golden matmul"
        );
    }

    #[test]
    fn both_dataflows_agree() {
        // The point of the dataflow abstraction: different space-time
        // transforms, identical results, different cycle profiles.
        let a = gen::dense(6, 6, 30);
        let b = gen::dense(6, 6, 31);
        let ws = simulate_ws_matmul(&a, &b).unwrap();
        let os = simulate_os_matmul(&a, &b).unwrap();
        assert!(ws.product.approx_eq(&os.product, 1e-9));
        assert_eq!(ws.stats.traffic.macs, os.stats.traffic.macs);
        assert_ne!(ws.stats.cycles, os.stats.cycles);
    }

    #[test]
    fn mismatched_shapes_are_invalid_config() {
        let a = gen::dense(3, 4, 1);
        let b = gen::dense(5, 2, 2);
        assert!(matches!(
            simulate_ws_matmul(&a, &b),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(matches!(
            simulate_os_matmul(&a, &b),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn watchdog_bounds_the_stream_loop() {
        let a = gen::dense(64, 8, 1);
        let b = gen::dense(8, 8, 2);
        let err = simulate_ws_matmul_faulty(
            &a,
            &b,
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::with_budget(10),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::WatchdogExpired { budget: 10, .. }));
        // A budget covering the full schedule succeeds and reports the same
        // cycles as the default-budget entry point.
        let ok = simulate_ws_matmul_faulty(
            &a,
            &b,
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::with_budget(1_000_000),
        )
        .unwrap();
        assert_eq!(
            ok.stats.cycles,
            simulate_ws_matmul(&a, &b).unwrap().stats.cycles
        );
    }

    #[test]
    fn injected_upsets_corrupt_the_product() {
        let a = gen::dense(16, 8, 50);
        let b = gen::dense(8, 8, 51);
        let golden = a.matmul(&b);
        let mut inj = FaultInjector::new(FaultPlan::transient(5, 1e-2));
        let r = simulate_ws_matmul_faulty(&a, &b, &mut inj, Watchdog::default_budget()).unwrap();
        assert!(inj.counts.upsets > 0, "1e-2 per MAC must inject something");
        assert!(
            !r.product.approx_eq(&golden, 1e-9),
            "unprotected upsets should corrupt the product"
        );
    }

    #[test]
    fn ecc_protects_the_product() {
        let a = gen::dense(16, 8, 50);
        let b = gen::dense(8, 8, 51);
        let golden = a.matmul(&b);
        let mut inj = FaultInjector::new(FaultPlan::transient(5, 1e-2).with_ecc());
        let r = simulate_ws_matmul_faulty(&a, &b, &mut inj, Watchdog::default_budget()).unwrap();
        assert!(inj.counts.upsets > 0);
        assert_eq!(inj.counts.sdc_candidates, 0);
        assert!(
            r.product.approx_eq(&golden, 1e-9),
            "SECDED-corrected upsets must not change the product"
        );
    }

    #[test]
    fn breakdown_sums_to_cycles_and_traces() {
        let a = gen::dense(8, 4, 4);
        let b = gen::dense(4, 4, 5);
        let mut tracer = Tracer::enabled();
        let r = simulate_ws_matmul_traced(
            &a,
            &b,
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::default_budget(),
            &mut tracer,
        )
        .unwrap();
        assert_eq!(r.stats.breakdown.total(), r.stats.cycles);
        assert!(r.stats.breakdown.get(StallClass::Compute) > 0);
        // Weight preload is always attributed to Fill.
        assert!(r.stats.breakdown.get(StallClass::Fill) >= 4);
        assert!(!tracer.is_empty(), "enabled tracer must record spans");
        let os = simulate_os_matmul(&a, &b).unwrap();
        assert_eq!(os.stats.breakdown.total(), os.stats.cycles);
        // Result drain through edge ports is attributed to Drain.
        assert!(os.stats.breakdown.get(StallClass::Drain) >= 4);
    }

    #[test]
    fn os_long_reduction_favors_ws_shape() {
        // Output-stationary arrays are m*n PEs; weight-stationary are k*n.
        // For long reductions the OS array holds fewer PEs busy longer.
        let a = gen::dense(2, 32, 40);
        let b = gen::dense(32, 2, 41);
        let os = simulate_os_matmul(&a, &b).unwrap();
        assert!(os.product.approx_eq(&a.matmul(&b), 1e-9));
        assert!(os.stats.cycles >= 32);
    }
}
