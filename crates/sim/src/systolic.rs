//! A cycle-stepped weight-stationary systolic array.
//!
//! This is the executable counterpart of the compiled weight-stationary
//! matmul design (Figure 2a's family): weights are pre-loaded into the PE
//! grid, activations are injected along one edge with a skew of one cycle
//! per row, and partial sums flow down and out the bottom. The simulator
//! advances register state cycle by cycle, so fill and drain latency appear
//! exactly as in hardware, and the computed product is checked against the
//! dense golden model in the tests.
//!
//! Unlike the lane models, a systolic step cannot be skipped — every PE's
//! registers move every cycle, and under fault injection every PE consults
//! the injector's RNG every step, so the draw order *is* the observable.
//! The performance win here is allocation-free stepping: the register
//! planes are flat row-major `Vec<f64>` buffers allocated once and
//! double-buffered with `mem::swap`, where the retained [`reference`]
//! implementation allocates two fresh `Vec<Vec<f64>>` grids per cycle.

use stellar_area::TrafficCounts;
use stellar_tensor::DenseMatrix;

use crate::error::{SimError, Watchdog};
use crate::fault::{FaultInjector, FaultPlan};
use crate::stats::{SimStats, Utilization};
use crate::trace::{CycleBreakdown, StallClass, Tracer};

/// The result of a cycle-stepped weight-stationary matmul.
#[derive(Clone, Debug, PartialEq)]
pub struct WsResult {
    /// The computed product.
    pub product: DenseMatrix,
    /// Simulation statistics.
    pub stats: SimStats,
}

/// Simulates `A(m×k) · B(k×n)` on a `k × n` grid of weight-stationary PEs
/// (one PE per element of `B`), cycle by cycle.
///
/// The array processes the whole `B` at once, so `k` and `n` are the array
/// dimensions; `m` streams through. Latency is `m + k + n` cycles plus
/// pipeline fill, matching the classic systolic schedule.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] if the shapes disagree, or
/// [`SimError::WatchdogExpired`] if the schedule exceeds the default cycle
/// budget (use [`simulate_ws_matmul_faulty`] to pick the budget).
pub fn simulate_ws_matmul(a: &DenseMatrix, b: &DenseMatrix) -> Result<WsResult, SimError> {
    simulate_ws_matmul_faulty(
        a,
        b,
        &mut FaultInjector::new(FaultPlan::none()),
        Watchdog::default_budget(),
    )
}

/// [`simulate_ws_matmul`] with fault injection and an explicit watchdog
/// budget: activations read at the array edge pass through the injector's
/// SRAM-corruption hook and every PE's partial-sum register through its
/// accumulator-upset hook.
pub fn simulate_ws_matmul_faulty(
    a: &DenseMatrix,
    b: &DenseMatrix,
    injector: &mut FaultInjector,
    watchdog: Watchdog,
) -> Result<WsResult, SimError> {
    simulate_ws_matmul_traced(a, b, injector, watchdog, &mut Tracer::disabled())
}

/// [`simulate_ws_matmul_faulty`] plus observability: every elapsed cycle
/// is attributed to a [`StallClass`] (preload and pre-activity skew are
/// `Fill`, any-PE-active steps are `Compute`, the tail is `Drain`) and,
/// when the tracer is enabled, per-row stream spans plus preload/drain
/// spans are recorded (track = A row index).
pub fn simulate_ws_matmul_traced(
    a: &DenseMatrix,
    b: &DenseMatrix,
    injector: &mut FaultInjector,
    mut watchdog: Watchdog,
    tracer: &mut Tracer,
) -> Result<WsResult, SimError> {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    if k != b.rows() {
        return Err(SimError::InvalidConfig(format!(
            "inner dimensions disagree: A is {m}x{k}, B is {}x{n}",
            b.rows()
        )));
    }
    if k == 0 || n == 0 {
        return Err(SimError::InvalidConfig("empty weight matrix".into()));
    }

    // PE state, flat row-major planes indexed [r * n + c], allocated once
    // and double-buffered: every slot is rewritten each step, so the swap
    // needs no clearing.
    let mut act = vec![0.0f64; k * n]; // activation entering PE (r, c)
    let mut psum = vec![0.0f64; k * n]; // psum leaving PE (r, c) downward
    let mut next_act = vec![0.0f64; k * n];
    let mut next_psum = vec![0.0f64; k * n];
    let mut product = DenseMatrix::zeros(m, n);

    let mut busy: u64 = 0;
    // Weight preload: one column of rows per cycle (k cycles).
    let preload_cycles = k as u64;

    // Stream phase: row i of A enters row 0..k of the array skewed; the
    // bottom of column c emits C[i][c] after the pipeline delay.
    // Total cycles: skew (k-1) + stream (m) + drain (k + 1).
    let total_steps = m + 2 * k + n;
    let mut breakdown = CycleBreakdown::new().with(StallClass::Fill, preload_cycles);
    tracer.span(0, "ws_preload", 0, preload_cycles, StallClass::Fill);
    for i in 0..m {
        // Row i of A is in flight from its skewed entry until it has
        // traversed the k array rows and n columns.
        tracer.span(
            i as u32,
            "ws_stream_row",
            preload_cycles + i as u64,
            (k + n) as u64,
            StallClass::Compute,
        );
    }
    let mut seen_activity = false;
    watchdog.tick(preload_cycles, "ws weight preload")?;
    for t in 0..total_steps {
        watchdog.tick(1, "ws stream loop")?;
        let mut step_busy = false;
        // Advance from the bottom row upward so values move one PE per
        // cycle. Iteration order (r descending, c ascending) is the RNG
        // draw order under fault injection and must not change.
        for r in (0..k).rev() {
            for c in 0..n {
                // Activation arrives from the left (c == 0 edge injects).
                let a_in = if c == 0 {
                    // Row r receives A[i][r] at time t = i + r (skewed).
                    let i = t as isize - r as isize;
                    if i >= 0 && (i as usize) < m {
                        // Edge injection is an SRAM read: corruptible.
                        injector.corrupt_sram_read(a.at(i as usize, r))
                    } else {
                        0.0
                    }
                } else {
                    act[r * n + c - 1]
                };
                // Partial sum arrives from above.
                let p_in = if r == 0 { 0.0 } else { psum[(r - 1) * n + c] };
                let w = b.at(r, c);
                let p_out = injector.perturb_accumulator(p_in + a_in * w);
                if a_in != 0.0 || p_in != 0.0 {
                    busy += 1;
                    step_busy = true;
                }
                next_act[r * n + c] = a_in;
                next_psum[r * n + c] = p_out;
                // The bottom row's output is C[i][c] for the activation row
                // that entered k + c cycles ago... handled below by
                // collecting when r == k-1.
                if r == k - 1 {
                    let i = t as isize - (k - 1) as isize - c as isize;
                    if i >= 0 && (i as usize) < m {
                        product.set(i as usize, c, p_out);
                    }
                }
            }
        }
        std::mem::swap(&mut act, &mut next_act);
        std::mem::swap(&mut psum, &mut next_psum);
        // Cycle attribution: while any PE holds live data the array is
        // computing; a quiet step before first activity is pipeline fill
        // (skew), after last activity it is drain.
        if step_busy {
            seen_activity = true;
            breakdown.add(StallClass::Compute, 1);
        } else if seen_activity {
            breakdown.add(StallClass::Drain, 1);
        } else {
            breakdown.add(StallClass::Fill, 1);
        }
    }

    let cycles = preload_cycles + total_steps as u64;
    breakdown.debug_assert_accounts_for(cycles, "ws systolic");
    let macs = (m * n * k) as u64;
    Ok(WsResult {
        product,
        stats: SimStats {
            cycles,
            utilization: Utilization {
                busy,
                total: cycles * (k * n) as u64,
            },
            traffic: TrafficCounts {
                macs,
                sram_accesses: (m * k + k * n + m * n) as u64,
                regfile_accesses: 2 * macs,
                dram_words: 0,
                pe_cycles: cycles * (k * n) as u64,
            },
            breakdown,
        },
    })
}

/// Simulates `A(m×k) · B(k×n)` on an `m × n` grid of *output-stationary*
/// PEs (one PE per element of `C`), cycle by cycle — the Figure 2b
/// dataflow, as a counterpart to the weight-stationary array.
///
/// `A` rows enter from the left (skewed one cycle per row), `B` columns
/// enter from the top (skewed one cycle per column), and each PE
/// accumulates its dot product in place; results drain at the end.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] if the shapes disagree, or
/// [`SimError::WatchdogExpired`] past the default cycle budget.
pub fn simulate_os_matmul(a: &DenseMatrix, b: &DenseMatrix) -> Result<WsResult, SimError> {
    simulate_os_matmul_faulty(
        a,
        b,
        &mut FaultInjector::new(FaultPlan::none()),
        Watchdog::default_budget(),
    )
}

/// [`simulate_os_matmul`] with fault injection and an explicit watchdog
/// budget; the stationary accumulators pass through the injector's upset
/// hook every cycle they update.
pub fn simulate_os_matmul_faulty(
    a: &DenseMatrix,
    b: &DenseMatrix,
    injector: &mut FaultInjector,
    watchdog: Watchdog,
) -> Result<WsResult, SimError> {
    simulate_os_matmul_traced(a, b, injector, watchdog, &mut Tracer::disabled())
}

/// [`simulate_os_matmul_faulty`] plus observability: any-PE-active steps
/// are `Compute`, quiet steps before first activity are `Fill`, the tail
/// and the end-of-run result drain are `Drain`; when enabled, the tracer
/// records one accumulate span per output row (track = C row index).
pub fn simulate_os_matmul_traced(
    a: &DenseMatrix,
    b: &DenseMatrix,
    injector: &mut FaultInjector,
    mut watchdog: Watchdog,
    tracer: &mut Tracer,
) -> Result<WsResult, SimError> {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    if k != b.rows() {
        return Err(SimError::InvalidConfig(format!(
            "inner dimensions disagree: A is {m}x{k}, B is {}x{n}",
            b.rows()
        )));
    }
    if m == 0 || n == 0 {
        return Err(SimError::InvalidConfig("empty output matrix".into()));
    }

    // Flat row-major planes indexed [i * n + j], allocated once; the
    // moving registers double-buffer, the accumulators update in place.
    let mut a_reg = vec![0.0f64; m * n]; // a value flowing right
    let mut b_reg = vec![0.0f64; m * n]; // b value flowing down
    let mut next_a = vec![0.0f64; m * n];
    let mut next_b = vec![0.0f64; m * n];
    let mut acc = vec![0.0f64; m * n]; // stationary accumulators
    let mut busy = 0u64;

    // Element A[i][kk] enters row i at t = i + kk; element B[kk][j] enters
    // column j at t = j + kk; they meet at PE (i, j) at t = i + j + kk.
    let total_steps = k + m + n;
    let mut breakdown = CycleBreakdown::new();
    let mut seen_activity = false;
    for i in 0..m {
        // Row i's accumulators are live from the first A arrival (t = i)
        // until the last k index has flowed across all n columns.
        tracer.span(
            i as u32,
            "os_accumulate_row",
            i as u64,
            (k + n) as u64,
            StallClass::Compute,
        );
    }
    for t in 0..total_steps {
        watchdog.tick(1, "os stream loop")?;
        let mut step_busy = false;
        // Iteration order (i, j ascending) is the RNG draw order under
        // fault injection and must not change.
        for i in 0..m {
            for j in 0..n {
                let a_in = if j == 0 {
                    let kk = t as isize - i as isize;
                    if kk >= 0 && (kk as usize) < k {
                        a.at(i, kk as usize)
                    } else {
                        0.0
                    }
                } else {
                    a_reg[i * n + j - 1]
                };
                let b_in = if i == 0 {
                    let kk = t as isize - j as isize;
                    if kk >= 0 && (kk as usize) < k {
                        b.at(kk as usize, j)
                    } else {
                        0.0
                    }
                } else {
                    b_reg[(i - 1) * n + j]
                };
                // Alignment: at PE (i, j), a_in arrived after j hops and
                // b_in after i hops; a_in carries A[i][t - i - j] and b_in
                // carries B[t - i - j][j] — the matching k index.
                if a_in != 0.0 || b_in != 0.0 {
                    busy += 1;
                    step_busy = true;
                    acc[i * n + j] = injector.perturb_accumulator(acc[i * n + j] + a_in * b_in);
                }
                next_a[i * n + j] = a_in;
                next_b[i * n + j] = b_in;
            }
        }
        std::mem::swap(&mut a_reg, &mut next_a);
        std::mem::swap(&mut b_reg, &mut next_b);
        if step_busy {
            seen_activity = true;
            breakdown.add(StallClass::Compute, 1);
        } else if seen_activity {
            breakdown.add(StallClass::Drain, 1);
        } else {
            breakdown.add(StallClass::Fill, 1);
        }
    }

    let mut product = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            product.set(i, j, acc[i * n + j]);
        }
    }
    // Drain: one cycle per output column through the edge ports.
    let cycles = (total_steps + n) as u64;
    breakdown.add(StallClass::Drain, n as u64);
    tracer.span(
        0,
        "os_drain",
        total_steps as u64,
        n as u64,
        StallClass::Drain,
    );
    breakdown.debug_assert_accounts_for(cycles, "os systolic");
    watchdog.tick(n as u64, "os drain")?;
    let macs = (m * n * k) as u64;
    Ok(WsResult {
        product,
        stats: SimStats {
            cycles,
            utilization: Utilization {
                busy,
                total: cycles * (m * n) as u64,
            },
            traffic: TrafficCounts {
                macs,
                sram_accesses: (m * k + k * n + m * n) as u64,
                regfile_accesses: 2 * macs,
                dram_words: 0,
                pe_cycles: cycles * (m * n) as u64,
            },
            breakdown,
        },
    })
}

/// The retained per-cycle implementations with nested-`Vec` PE grids and
/// two fresh grid allocations per step — the observational-equivalence
/// oracle for the flat-buffer paths above and the "pre" side of the `sim`
/// benchmark suite.
pub mod reference {
    use super::*;

    /// Allocation-per-step counterpart of [`simulate_ws_matmul_traced`]
    /// (identical observable behaviour).
    ///
    /// # Errors
    ///
    /// Identical to [`simulate_ws_matmul_traced`].
    pub fn simulate_ws_matmul_traced(
        a: &DenseMatrix,
        b: &DenseMatrix,
        injector: &mut FaultInjector,
        mut watchdog: Watchdog,
        tracer: &mut Tracer,
    ) -> Result<WsResult, SimError> {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        if k != b.rows() {
            return Err(SimError::InvalidConfig(format!(
                "inner dimensions disagree: A is {m}x{k}, B is {}x{n}",
                b.rows()
            )));
        }
        if k == 0 || n == 0 {
            return Err(SimError::InvalidConfig("empty weight matrix".into()));
        }

        // PE state: stationary weight, activation register, psum register.
        let mut act = vec![vec![0.0f64; n]; k]; // act[r][c]: activation entering PE (r, c)
        let mut psum = vec![vec![0.0f64; n]; k]; // psum leaving PE (r, c) downward
        let mut product = DenseMatrix::zeros(m, n);

        let mut busy: u64 = 0;
        // Weight preload: one column of rows per cycle (k cycles).
        let preload_cycles = k as u64;

        // Stream phase: row i of A enters row 0..k of the array skewed; the
        // bottom of column c emits C[i][c] after the pipeline delay.
        // Total cycles: skew (k-1) + stream (m) + drain (k + 1).
        let total_steps = m + 2 * k + n;
        let mut breakdown = CycleBreakdown::new().with(StallClass::Fill, preload_cycles);
        tracer.span(0, "ws_preload", 0, preload_cycles, StallClass::Fill);
        for i in 0..m {
            // Row i of A is in flight from its skewed entry until it has
            // traversed the k array rows and n columns.
            tracer.span(
                i as u32,
                "ws_stream_row",
                preload_cycles + i as u64,
                (k + n) as u64,
                StallClass::Compute,
            );
        }
        let mut seen_activity = false;
        watchdog.tick(preload_cycles, "ws weight preload")?;
        for t in 0..total_steps {
            watchdog.tick(1, "ws stream loop")?;
            let mut step_busy = false;
            // Advance from the bottom row upward so values move one PE per
            // cycle.
            let mut next_act = vec![vec![0.0f64; n]; k];
            let mut next_psum = vec![vec![0.0f64; n]; k];
            for r in (0..k).rev() {
                for c in 0..n {
                    // Activation arrives from the left (c == 0 edge injects).
                    let a_in = if c == 0 {
                        // Row r receives A[i][r] at time t = i + r (skewed).
                        let i = t as isize - r as isize;
                        if i >= 0 && (i as usize) < m {
                            // Edge injection is an SRAM read: corruptible.
                            injector.corrupt_sram_read(a.at(i as usize, r))
                        } else {
                            0.0
                        }
                    } else {
                        act[r][c - 1]
                    };
                    // Partial sum arrives from above.
                    let p_in = if r == 0 { 0.0 } else { psum[r - 1][c] };
                    let w = b.at(r, c);
                    let p_out = injector.perturb_accumulator(p_in + a_in * w);
                    if a_in != 0.0 || p_in != 0.0 {
                        busy += 1;
                        step_busy = true;
                    }
                    next_act[r][c] = a_in;
                    next_psum[r][c] = p_out;
                    // The bottom row's output is C[i][c] for the activation
                    // row that entered k + c cycles ago... handled below by
                    // collecting when r == k-1.
                    if r == k - 1 {
                        let i = t as isize - (k - 1) as isize - c as isize;
                        if i >= 0 && (i as usize) < m {
                            product.set(i as usize, c, p_out);
                        }
                    }
                }
            }
            act = next_act;
            psum = next_psum;
            // Cycle attribution: while any PE holds live data the array is
            // computing; a quiet step before first activity is pipeline fill
            // (skew), after last activity it is drain.
            if step_busy {
                seen_activity = true;
                breakdown.add(StallClass::Compute, 1);
            } else if seen_activity {
                breakdown.add(StallClass::Drain, 1);
            } else {
                breakdown.add(StallClass::Fill, 1);
            }
        }

        let cycles = preload_cycles + total_steps as u64;
        breakdown.debug_assert_accounts_for(cycles, "ws systolic");
        let macs = (m * n * k) as u64;
        Ok(WsResult {
            product,
            stats: SimStats {
                cycles,
                utilization: Utilization {
                    busy,
                    total: cycles * (k * n) as u64,
                },
                traffic: TrafficCounts {
                    macs,
                    sram_accesses: (m * k + k * n + m * n) as u64,
                    regfile_accesses: 2 * macs,
                    dram_words: 0,
                    pe_cycles: cycles * (k * n) as u64,
                },
                breakdown,
            },
        })
    }

    /// Allocation-per-step counterpart of [`simulate_os_matmul_traced`]
    /// (identical observable behaviour).
    ///
    /// # Errors
    ///
    /// Identical to [`simulate_os_matmul_traced`].
    pub fn simulate_os_matmul_traced(
        a: &DenseMatrix,
        b: &DenseMatrix,
        injector: &mut FaultInjector,
        mut watchdog: Watchdog,
        tracer: &mut Tracer,
    ) -> Result<WsResult, SimError> {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        if k != b.rows() {
            return Err(SimError::InvalidConfig(format!(
                "inner dimensions disagree: A is {m}x{k}, B is {}x{n}",
                b.rows()
            )));
        }
        if m == 0 || n == 0 {
            return Err(SimError::InvalidConfig("empty output matrix".into()));
        }

        let mut a_reg = vec![vec![0.0f64; n]; m]; // a value flowing right
        let mut b_reg = vec![vec![0.0f64; n]; m]; // b value flowing down
        let mut acc = vec![vec![0.0f64; n]; m]; // stationary accumulators
        let mut busy = 0u64;

        // Element A[i][kk] enters row i at t = i + kk; element B[kk][j]
        // enters column j at t = j + kk; they meet at PE (i, j) at
        // t = i + j + kk.
        let total_steps = k + m + n;
        let mut breakdown = CycleBreakdown::new();
        let mut seen_activity = false;
        for i in 0..m {
            // Row i's accumulators are live from the first A arrival (t = i)
            // until the last k index has flowed across all n columns.
            tracer.span(
                i as u32,
                "os_accumulate_row",
                i as u64,
                (k + n) as u64,
                StallClass::Compute,
            );
        }
        for t in 0..total_steps {
            watchdog.tick(1, "os stream loop")?;
            let mut step_busy = false;
            let mut next_a = vec![vec![0.0f64; n]; m];
            let mut next_b = vec![vec![0.0f64; n]; m];
            for i in 0..m {
                for j in 0..n {
                    let a_in = if j == 0 {
                        let kk = t as isize - i as isize;
                        if kk >= 0 && (kk as usize) < k {
                            a.at(i, kk as usize)
                        } else {
                            0.0
                        }
                    } else {
                        a_reg[i][j - 1]
                    };
                    let b_in = if i == 0 {
                        let kk = t as isize - j as isize;
                        if kk >= 0 && (kk as usize) < k {
                            b.at(kk as usize, j)
                        } else {
                            0.0
                        }
                    } else {
                        b_reg[i - 1][j]
                    };
                    // Alignment: at PE (i, j), a_in arrived after j hops and
                    // b_in after i hops; a_in carries A[i][t - i - j] and
                    // b_in carries B[t - i - j][j] — the matching k index.
                    if a_in != 0.0 || b_in != 0.0 {
                        busy += 1;
                        step_busy = true;
                        acc[i][j] = injector.perturb_accumulator(acc[i][j] + a_in * b_in);
                    }
                    next_a[i][j] = a_in;
                    next_b[i][j] = b_in;
                }
            }
            a_reg = next_a;
            b_reg = next_b;
            if step_busy {
                seen_activity = true;
                breakdown.add(StallClass::Compute, 1);
            } else if seen_activity {
                breakdown.add(StallClass::Drain, 1);
            } else {
                breakdown.add(StallClass::Fill, 1);
            }
        }

        let mut product = DenseMatrix::zeros(m, n);
        for (i, row) in acc.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                product.set(i, j, v);
            }
        }
        // Drain: one cycle per output column through the edge ports.
        let cycles = (total_steps + n) as u64;
        breakdown.add(StallClass::Drain, n as u64);
        tracer.span(
            0,
            "os_drain",
            total_steps as u64,
            n as u64,
            StallClass::Drain,
        );
        breakdown.debug_assert_accounts_for(cycles, "os systolic");
        watchdog.tick(n as u64, "os drain")?;
        let macs = (m * n * k) as u64;
        Ok(WsResult {
            product,
            stats: SimStats {
                cycles,
                utilization: Utilization {
                    busy,
                    total: cycles * (m * n) as u64,
                },
                traffic: TrafficCounts {
                    macs,
                    sram_accesses: (m * k + k * n + m * n) as u64,
                    regfile_accesses: 2 * macs,
                    dram_words: 0,
                    pe_cycles: cycles * (m * n) as u64,
                },
                breakdown,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_tensor::gen;

    #[test]
    fn computes_correct_product() {
        let a = gen::dense(5, 4, 1);
        let b = gen::dense(4, 3, 2);
        let r = simulate_ws_matmul(&a, &b).unwrap();
        assert!(
            r.product.approx_eq(&a.matmul(&b), 1e-9),
            "systolic result diverges from golden matmul"
        );
    }

    #[test]
    fn identity_weights() {
        let a = gen::dense(6, 3, 3);
        let id = DenseMatrix::identity(3);
        let r = simulate_ws_matmul(&a, &id).unwrap();
        assert!(r.product.approx_eq(&a, 1e-12));
    }

    #[test]
    fn cycle_count_has_fill_and_drain() {
        let a = gen::dense(8, 4, 4);
        let b = gen::dense(4, 4, 5);
        let r = simulate_ws_matmul(&a, &b).unwrap();
        // Preload k + stream m + skew/drain ~ 2k + n.
        assert_eq!(r.stats.cycles, 4 + (8 + 8 + 4) as u64);
        assert_eq!(r.stats.traffic.macs, 8 * 4 * 4);
    }

    #[test]
    fn utilization_improves_with_longer_streams() {
        let b = gen::dense(4, 4, 7);
        let short = simulate_ws_matmul(&gen::dense(2, 4, 8), &b).unwrap();
        let long = simulate_ws_matmul(&gen::dense(64, 4, 9), &b).unwrap();
        assert!(
            long.stats.utilization.fraction() > short.stats.utilization.fraction(),
            "longer streams must amortize fill/drain"
        );
    }

    #[test]
    fn rectangular_shapes() {
        let a = gen::dense(3, 5, 10);
        let b = gen::dense(5, 2, 11);
        let r = simulate_ws_matmul(&a, &b).unwrap();
        assert!(r.product.approx_eq(&a.matmul(&b), 1e-9));
    }

    #[test]
    fn output_stationary_correct() {
        let a = gen::dense(5, 4, 20);
        let b = gen::dense(4, 3, 21);
        let r = simulate_os_matmul(&a, &b).unwrap();
        assert!(
            r.product.approx_eq(&a.matmul(&b), 1e-9),
            "output-stationary result diverges from golden matmul"
        );
    }

    #[test]
    fn both_dataflows_agree() {
        // The point of the dataflow abstraction: different space-time
        // transforms, identical results, different cycle profiles.
        let a = gen::dense(6, 6, 30);
        let b = gen::dense(6, 6, 31);
        let ws = simulate_ws_matmul(&a, &b).unwrap();
        let os = simulate_os_matmul(&a, &b).unwrap();
        assert!(ws.product.approx_eq(&os.product, 1e-9));
        assert_eq!(ws.stats.traffic.macs, os.stats.traffic.macs);
        assert_ne!(ws.stats.cycles, os.stats.cycles);
    }

    #[test]
    fn mismatched_shapes_are_invalid_config() {
        let a = gen::dense(3, 4, 1);
        let b = gen::dense(5, 2, 2);
        assert!(matches!(
            simulate_ws_matmul(&a, &b),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(matches!(
            simulate_os_matmul(&a, &b),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn watchdog_bounds_the_stream_loop() {
        let a = gen::dense(64, 8, 1);
        let b = gen::dense(8, 8, 2);
        let err = simulate_ws_matmul_faulty(
            &a,
            &b,
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::with_budget(10),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::WatchdogExpired { budget: 10, .. }));
        // A budget covering the full schedule succeeds and reports the same
        // cycles as the default-budget entry point.
        let ok = simulate_ws_matmul_faulty(
            &a,
            &b,
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::with_budget(1_000_000),
        )
        .unwrap();
        assert_eq!(
            ok.stats.cycles,
            simulate_ws_matmul(&a, &b).unwrap().stats.cycles
        );
    }

    #[test]
    fn injected_upsets_corrupt_the_product() {
        let a = gen::dense(16, 8, 50);
        let b = gen::dense(8, 8, 51);
        let golden = a.matmul(&b);
        let mut inj = FaultInjector::new(FaultPlan::transient(5, 1e-2));
        let r = simulate_ws_matmul_faulty(&a, &b, &mut inj, Watchdog::default_budget()).unwrap();
        assert!(inj.counts.upsets > 0, "1e-2 per MAC must inject something");
        assert!(
            !r.product.approx_eq(&golden, 1e-9),
            "unprotected upsets should corrupt the product"
        );
    }

    #[test]
    fn ecc_protects_the_product() {
        let a = gen::dense(16, 8, 50);
        let b = gen::dense(8, 8, 51);
        let golden = a.matmul(&b);
        let mut inj = FaultInjector::new(FaultPlan::transient(5, 1e-2).with_ecc());
        let r = simulate_ws_matmul_faulty(&a, &b, &mut inj, Watchdog::default_budget()).unwrap();
        assert!(inj.counts.upsets > 0);
        assert_eq!(inj.counts.sdc_candidates, 0);
        assert!(
            r.product.approx_eq(&golden, 1e-9),
            "SECDED-corrected upsets must not change the product"
        );
    }

    #[test]
    fn breakdown_sums_to_cycles_and_traces() {
        let a = gen::dense(8, 4, 4);
        let b = gen::dense(4, 4, 5);
        let mut tracer = Tracer::enabled();
        let r = simulate_ws_matmul_traced(
            &a,
            &b,
            &mut FaultInjector::new(FaultPlan::none()),
            Watchdog::default_budget(),
            &mut tracer,
        )
        .unwrap();
        assert_eq!(r.stats.breakdown.total(), r.stats.cycles);
        assert!(r.stats.breakdown.get(StallClass::Compute) > 0);
        // Weight preload is always attributed to Fill.
        assert!(r.stats.breakdown.get(StallClass::Fill) >= 4);
        assert!(!tracer.is_empty(), "enabled tracer must record spans");
        let os = simulate_os_matmul(&a, &b).unwrap();
        assert_eq!(os.stats.breakdown.total(), os.stats.cycles);
        // Result drain through edge ports is attributed to Drain.
        assert!(os.stats.breakdown.get(StallClass::Drain) >= 4);
    }

    #[test]
    fn os_long_reduction_favors_ws_shape() {
        // Output-stationary arrays are m*n PEs; weight-stationary are k*n.
        // For long reductions the OS array holds fewer PEs busy longer.
        let a = gen::dense(2, 32, 40);
        let b = gen::dense(32, 2, 41);
        let os = simulate_os_matmul(&a, &b).unwrap();
        assert!(os.product.approx_eq(&a.matmul(&b), 1e-9));
        assert!(os.stats.cycles >= 32);
    }
}
