//! Deterministic fault injection and the SECDED protection model.
//!
//! A generated accelerator deployed at scale sees transient upsets: bit
//! flips in accumulators and regfiles, corrupted SRAM reads, dropped or
//! duplicated DMA responses, and hard stuck-at PE failures. This module
//! injects those faults into the cycle-level simulators under a
//! seed-driven plan — the same [`FaultPlan`] always produces the same fault
//! sequence — and models the SECDED (single-error-correct,
//! double-error-detect) option on SRAM and regfile words, so a sweep can
//! measure how much silent data corruption ECC buys back and what the
//! area/energy overhead costs (see `stellar-area`'s ECC hooks).

// The resilience layer must not itself panic: unwinding is denied in
// non-test code here.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable
    )
)]

use stellar_tensor::rng::Rng64;

/// Whether memories and accumulators carry SECDED check bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EccMode {
    /// Raw words: every injected flip lands in data.
    None,
    /// SECDED-protected words: single-bit events are corrected in place,
    /// double-bit events are detected (the consumer sees a flagged word).
    Secded,
}

/// A deterministic fault-injection plan. Equal plans (including the seed)
/// inject identical fault sequences into identical simulations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed; the sole source of randomness.
    pub seed: u64,
    /// Probability of a transient accumulator/regfile upset per MAC.
    pub bit_flip_per_mac: f64,
    /// Probability of corrupting each SRAM read.
    pub sram_corrupt_per_read: f64,
    /// Probability a DMA response is dropped (never arrives).
    pub dma_drop_per_request: f64,
    /// Probability a DMA response is duplicated (arrives twice, wasting a
    /// response slot cycle).
    pub dma_duplicate_per_request: f64,
    /// Fraction of upset events that flip *two* bits of a word — the case
    /// SECDED can only detect, not correct.
    pub multi_bit_fraction: f64,
    /// A hard stuck-at-faulty PE lane, if any (sparse-array lanes).
    pub stuck_lane: Option<usize>,
    /// ECC protection on SRAM/regfile words.
    pub ecc: EccMode,
}

impl FaultPlan {
    /// The fault-free plan: probabilities zero, no stuck lane, no ECC.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            bit_flip_per_mac: 0.0,
            sram_corrupt_per_read: 0.0,
            dma_drop_per_request: 0.0,
            dma_duplicate_per_request: 0.0,
            multi_bit_fraction: 0.05,
            stuck_lane: None,
            ecc: EccMode::None,
        }
    }

    /// A transient-upset plan at the given per-event rate.
    pub fn transient(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            bit_flip_per_mac: rate,
            sram_corrupt_per_read: rate,
            ..FaultPlan::none()
        }
    }

    /// The same plan with SECDED protection enabled.
    pub fn with_ecc(mut self) -> FaultPlan {
        self.ecc = EccMode::Secded;
        self
    }

    /// True if the plan can never inject anything.
    pub fn is_fault_free(&self) -> bool {
        self.bit_flip_per_mac <= 0.0
            && self.sram_corrupt_per_read <= 0.0
            && self.dma_drop_per_request <= 0.0
            && self.dma_duplicate_per_request <= 0.0
            && self.stuck_lane.is_none()
    }
}

/// What happened to one DMA response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaFault {
    /// Delivered normally.
    None,
    /// Dropped: the requester times out and must retry.
    Dropped,
    /// Duplicated: delivered, but a spurious second beat occupies the
    /// response path for one extra cycle.
    Duplicated,
}

/// Counters of everything the injector did and how protection responded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transient upset events injected (accumulator + SRAM).
    pub upsets: u64,
    /// Upsets corrected in place by SECDED.
    pub corrected: u64,
    /// Double-bit upsets detected (flagged) by SECDED.
    pub detected: u64,
    /// Upsets that reached data unprotected — silent-data-corruption
    /// candidates.
    pub sdc_candidates: u64,
    /// DMA responses dropped.
    pub dma_dropped: u64,
    /// DMA responses duplicated.
    pub dma_duplicated: u64,
}

impl FaultCounts {
    /// Total events injected across all categories.
    pub fn total_injected(&self) -> u64 {
        self.upsets + self.dma_dropped + self.dma_duplicated
    }
}

/// Classification of a completed (or failed) faulty run against its golden
/// result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RunOutcome {
    /// Output matches golden; nothing was injected or every event missed
    /// architectural state.
    Correct,
    /// Output matches golden because ECC corrected every upset.
    Corrected,
    /// Output matches golden and at least one upset was detected (flagged)
    /// — the error was contained, not silent.
    Detected,
    /// Output diverges from golden with no detection: silent data
    /// corruption.
    SilentDataCorruption,
    /// The run aborted (deadlock, watchdog, retries exhausted).
    Hung,
}

impl RunOutcome {
    /// Classifies a run that *completed* with the given numerical verdict.
    /// Aborted runs are [`RunOutcome::Hung`], decided by the caller.
    pub fn classify(counts: &FaultCounts, output_matches_golden: bool) -> RunOutcome {
        if !output_matches_golden {
            RunOutcome::SilentDataCorruption
        } else if counts.detected > 0 {
            RunOutcome::Detected
        } else if counts.corrected > 0 {
            RunOutcome::Corrected
        } else {
            RunOutcome::Correct
        }
    }

    /// A short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RunOutcome::Correct => "correct",
            RunOutcome::Corrected => "corrected",
            RunOutcome::Detected => "detected",
            RunOutcome::SilentDataCorruption => "sdc",
            RunOutcome::Hung => "hung",
        }
    }
}

/// The seed-driven fault injector threaded through the simulators.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng64,
    /// Event counters, updated as the simulation consults the injector.
    pub counts: FaultCounts,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            rng: Rng64::seed_from_u64(plan.seed),
            counts: FaultCounts::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True if `lane` is the hard-faulty lane of the plan.
    pub fn lane_stuck(&self, lane: usize) -> bool {
        self.plan.stuck_lane == Some(lane)
    }

    /// Possibly upsets an accumulator value after a MAC. Under SECDED the
    /// upset is corrected (single-bit) or detected (double-bit) and the
    /// value survives; unprotected, a mantissa bit flips and the corrupted
    /// value propagates.
    pub fn perturb_accumulator(&mut self, v: f64) -> f64 {
        self.upset(v, self.plan.bit_flip_per_mac)
    }

    /// Possibly corrupts a value read from SRAM, under the same protection
    /// rules as [`FaultInjector::perturb_accumulator`].
    pub fn corrupt_sram_read(&mut self, v: f64) -> f64 {
        self.upset(v, self.plan.sram_corrupt_per_read)
    }

    fn upset(&mut self, v: f64, p: f64) -> f64 {
        if !self.rng.chance(p) {
            return v;
        }
        self.counts.upsets += 1;
        let double_bit = self.rng.chance(self.plan.multi_bit_fraction);
        match self.plan.ecc {
            EccMode::Secded => {
                if double_bit {
                    // Detected: the word is flagged and refetched/zeroed by
                    // the consumer; the clean value survives but the event
                    // is visible.
                    self.counts.detected += 1;
                } else {
                    self.counts.corrected += 1;
                }
                v
            }
            EccMode::None => {
                self.counts.sdc_candidates += 1;
                // Flip one mantissa bit (0..52) so the corruption stays a
                // finite number rather than exploding to inf/NaN.
                let bit = self.rng.bit_index(52);
                f64::from_bits(v.to_bits() ^ (1u64 << bit))
            }
        }
    }

    /// Draws only the drop fate of one DMA response. Valid — and
    /// observationally identical to [`FaultInjector::dma_response_fault`],
    /// RNG sequence included — only when the plan's duplicate probability
    /// is zero: `Rng64::chance(0.0)` draws nothing, so skipping the
    /// duplicate branch skips no RNG state. The bulk DMA request loop
    /// uses this to avoid the enum match and second probability check on
    /// every request.
    pub fn dma_response_dropped(&mut self) -> bool {
        debug_assert!(
            self.plan.dma_duplicate_per_request <= 0.0,
            "drop-only draw requires a duplicate-free plan"
        );
        if self.rng.chance(self.plan.dma_drop_per_request) {
            self.counts.dma_dropped += 1;
            true
        } else {
            false
        }
    }

    /// Draws the fate of one DMA response.
    pub fn dma_response_fault(&mut self) -> DmaFault {
        if self.rng.chance(self.plan.dma_drop_per_request) {
            self.counts.dma_dropped += 1;
            DmaFault::Dropped
        } else if self.rng.chance(self.plan.dma_duplicate_per_request) {
            self.counts.dma_duplicated += 1;
            DmaFault::Duplicated
        } else {
            DmaFault::None
        }
    }
}

/// A functional (39,32) Hamming-SECDED code: 32 data bits, 6 Hamming check
/// bits, and one overall parity bit. Used by the tests to validate the
/// correct/detect semantics the injector assumes, and by `stellar-area` to
/// size the storage overhead.
pub mod secded {
    /// The number of check bits SECDED needs for `data_bits` of payload:
    /// the smallest `m` with `2^m >= data_bits + m + 1`, plus the overall
    /// parity bit. For 32 data bits this is 7.
    pub fn check_bits(data_bits: u32) -> u32 {
        let mut m = 1u32;
        while (1u64 << m) < data_bits as u64 + m as u64 + 1 {
            m += 1;
        }
        m + 1
    }

    /// The total stored width of a SECDED-protected word.
    pub fn code_width(data_bits: u32) -> u32 {
        data_bits + check_bits(data_bits)
    }

    /// The outcome of decoding one codeword.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Decode {
        /// No error.
        Clean(u32),
        /// A single-bit error was corrected.
        Corrected(u32),
        /// A double-bit error was detected; the data is not trustworthy.
        DoubleError,
    }

    // Codeword layout: bit positions 1..=38 hold Hamming positions (check
    // bits at powers of two), bit 0 holds the overall parity.

    fn data_positions() -> Vec<u32> {
        (1u32..=38).filter(|p| !p.is_power_of_two()).collect()
    }

    /// Encodes 32 data bits into a 39-bit SECDED codeword.
    pub fn encode(data: u32) -> u64 {
        let mut code: u64 = 0;
        for (i, p) in data_positions().into_iter().enumerate() {
            if data >> i & 1 == 1 {
                code |= 1u64 << p;
            }
        }
        // Hamming check bits: parity over positions with that bit set.
        for c in [1u32, 2, 4, 8, 16, 32] {
            let mut parity = 0u64;
            for p in 1u32..=38 {
                if p & c != 0 {
                    parity ^= code >> p & 1;
                }
            }
            code |= parity << c;
        }
        // Overall parity over the whole word (position 0 included at 0).
        let overall = (code.count_ones() & 1) as u64;
        code | overall
    }

    /// Decodes a 39-bit codeword, correcting single-bit errors and
    /// detecting double-bit errors.
    pub fn decode(code: u64) -> Decode {
        let mut syndrome = 0u32;
        for c in [1u32, 2, 4, 8, 16, 32] {
            let mut parity = 0u64;
            for p in 1u32..=38 {
                if p & c != 0 {
                    parity ^= code >> p & 1;
                }
            }
            if parity != 0 {
                syndrome |= c;
            }
        }
        let overall_ok = code.count_ones() & 1 == 0;

        let extract = |code: u64| -> u32 {
            let mut data = 0u32;
            for (i, p) in data_positions().into_iter().enumerate() {
                if code >> p & 1 == 1 {
                    data |= 1 << i;
                }
            }
            data
        };

        match (syndrome, overall_ok) {
            (0, true) => Decode::Clean(extract(code)),
            // Overall parity wrong: exactly one bit flipped. Syndrome 0
            // means it was the parity bit itself.
            (0, false) => Decode::Corrected(extract(code)),
            (s, false) if s <= 38 => Decode::Corrected(extract(code ^ (1u64 << s))),
            // Syndrome set but overall parity consistent: two bits flipped.
            _ => Decode::DoubleError,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn check_bit_counts() {
            assert_eq!(check_bits(8), 5);
            assert_eq!(check_bits(16), 6);
            assert_eq!(check_bits(32), 7);
            assert_eq!(check_bits(64), 8);
            assert_eq!(code_width(32), 39);
        }

        #[test]
        fn clean_round_trip() {
            for data in [0u32, 1, 0xdead_beef, u32::MAX, 0x5555_5555] {
                assert_eq!(decode(encode(data)), Decode::Clean(data));
            }
        }

        #[test]
        fn corrects_every_single_bit_flip() {
            let data = 0xcafe_f00d;
            let code = encode(data);
            for bit in 0..39u32 {
                let got = decode(code ^ (1u64 << bit));
                assert_eq!(got, Decode::Corrected(data), "flip bit {bit}");
            }
        }

        #[test]
        fn detects_every_double_bit_flip() {
            let data = 0x1234_5678;
            let code = encode(data);
            for b1 in 0..39u32 {
                for b2 in (b1 + 1)..39u32 {
                    let got = decode(code ^ (1u64 << b1) ^ (1u64 << b2));
                    assert_eq!(got, Decode::DoubleError, "flip bits {b1},{b2}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        for i in 0..1000 {
            assert_eq!(inj.perturb_accumulator(i as f64), i as f64);
            assert_eq!(inj.corrupt_sram_read(i as f64), i as f64);
            assert_eq!(inj.dma_response_fault(), DmaFault::None);
        }
        assert_eq!(inj.counts, FaultCounts::default());
        assert!(FaultPlan::none().is_fault_free());
        assert!(!FaultPlan::transient(1, 0.1).is_fault_free());
    }

    #[test]
    fn injection_is_deterministic() {
        let plan = FaultPlan::transient(99, 0.05);
        let run = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan);
            let vals: Vec<f64> = (0..500)
                .map(|i| inj.perturb_accumulator(i as f64))
                .collect();
            (vals, inj.counts)
        };
        let (v1, c1) = run(plan);
        let (v2, c2) = run(plan);
        assert_eq!(v1, v2);
        assert_eq!(c1, c2);
        let (v3, _) = run(FaultPlan::transient(100, 0.05));
        assert_ne!(v1, v3, "different seeds must inject differently");
    }

    #[test]
    fn unprotected_upsets_corrupt_values() {
        let mut inj = FaultInjector::new(FaultPlan::transient(7, 1.0));
        let v = inj.perturb_accumulator(1.5);
        assert_ne!(v, 1.5);
        assert!(v.is_finite(), "mantissa flips stay finite");
        assert_eq!(inj.counts.upsets, 1);
        assert_eq!(inj.counts.sdc_candidates, 1);
        assert_eq!(inj.counts.corrected, 0);
    }

    #[test]
    fn ecc_preserves_values_and_classifies_events() {
        let mut inj = FaultInjector::new(FaultPlan::transient(7, 1.0).with_ecc());
        for i in 0..200 {
            assert_eq!(inj.perturb_accumulator(i as f64), i as f64);
        }
        assert_eq!(inj.counts.upsets, 200);
        assert_eq!(inj.counts.sdc_candidates, 0);
        assert_eq!(inj.counts.corrected + inj.counts.detected, 200);
        assert!(
            inj.counts.corrected > inj.counts.detected,
            "most upsets are single-bit"
        );
        assert!(inj.counts.detected > 0, "some upsets are double-bit");
    }

    #[test]
    fn dma_faults_follow_rates() {
        let mut plan = FaultPlan::none();
        plan.seed = 3;
        plan.dma_drop_per_request = 0.5;
        let mut inj = FaultInjector::new(plan);
        let drops = (0..1000)
            .filter(|_| inj.dma_response_fault() == DmaFault::Dropped)
            .count();
        assert!((400..600).contains(&drops), "got {drops}");
        assert_eq!(inj.counts.dma_dropped as usize, drops);
    }

    #[test]
    fn stuck_lane_identified() {
        let mut plan = FaultPlan::none();
        plan.stuck_lane = Some(2);
        let inj = FaultInjector::new(plan);
        assert!(inj.lane_stuck(2));
        assert!(!inj.lane_stuck(0));
    }

    #[test]
    fn outcome_classification() {
        let mut c = FaultCounts::default();
        assert_eq!(RunOutcome::classify(&c, true), RunOutcome::Correct);
        c.corrected = 2;
        assert_eq!(RunOutcome::classify(&c, true), RunOutcome::Corrected);
        c.detected = 1;
        assert_eq!(RunOutcome::classify(&c, true), RunOutcome::Detected);
        assert_eq!(
            RunOutcome::classify(&c, false),
            RunOutcome::SilentDataCorruption
        );
        assert_eq!(RunOutcome::SilentDataCorruption.label(), "sdc");
    }
}
