//! A shared L2 cache model.
//!
//! §IV-F of the paper: Stellar's explicitly-managed buffers cannot express
//! hardware-managed caches, but "this limitation is mitigated to a degree
//! by Stellar's integration with the Chipyard framework, which can
//! provision Stellar-generated SoCs with large L2 caches which can be
//! shared by both CPUs and accelerators". This model lets the simulator
//! interpose such a cache between the DMA and DRAM: scattered accesses
//! with reuse (e.g. OuterSPACE's partial-sum pointers) hit in L2 and skip
//! the DRAM round trip.
//!
//! The tag store is two flat preallocated arrays (struct-of-arrays: one
//! slot per way of every set, tags and last-use stamps side by side), so
//! the per-access hot path is a bounded linear probe with zero heap
//! allocation — where the retained [`reference`] model keeps a
//! `HashMap<set, Vec<(tag, stamp)>>` and reallocates as sets fill.
//! Stamps are unique and monotone, so LRU choice — and therefore every
//! hit/miss outcome — is identical between the two layouts even though
//! the reference's `Vec` reorders on eviction.

use crate::dma::DramParams;
use crate::trace::{CycleBreakdown, StallClass};

/// A set-associative shared L2 cache with LRU replacement.
///
/// Addresses are in words; lines are `line_words` long. The model tracks
/// hits and misses and reports effective access cycles.
#[derive(Clone, Debug)]
pub struct L2Cache {
    line_words: u64,
    num_sets: u64,
    ways: usize,
    hit_latency: u64,
    dram: DramParams,
    /// Tag of slot `set * ways + way`; valid iff its stamp is non-zero.
    tags: Vec<u64>,
    /// Last-use stamp per slot; 0 marks an empty slot (stamps start at 1).
    stamps: Vec<u64>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl L2Cache {
    /// Creates a cache of `capacity_words` with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `capacity_words` is smaller than
    /// one way of lines.
    pub fn new(capacity_words: u64, ways: usize, line_words: u64, dram: DramParams) -> L2Cache {
        assert!(
            capacity_words > 0 && ways > 0 && line_words > 0,
            "cache parameters must be non-zero"
        );
        let lines = capacity_words / line_words;
        let num_sets = (lines / ways as u64).max(1);
        let slots = (num_sets as usize).saturating_mul(ways);
        L2Cache {
            line_words,
            num_sets,
            ways,
            hit_latency: 12,
            dram,
            tags: vec![0; slots],
            stamps: vec![0; slots],
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// A 512 KiW cache in the Chipyard style: 8-way, 8-word lines.
    pub fn chipyard_default() -> L2Cache {
        L2Cache::new(512 * 1024, 8, 8, DramParams::default())
    }

    /// Accesses one word; returns the access latency in cycles and whether
    /// it hit.
    pub fn access(&mut self, addr: u64) -> (u64, bool) {
        self.stamp += 1;
        let line = addr / self.line_words;
        let set = line % self.num_sets;
        let tag = line / self.num_sets;
        let base = set as usize * self.ways;
        // Bounded probe over this set's slot slices, 4-wide unrolled: a
        // valid slot (stamp != 0) with a matching tag is a hit. Valid
        // tags are unique within a set (an insert only happens after a
        // whole-set probe missed), so at most one lane matches and the
        // hit choice is identical to the scalar first-match probe the
        // [`reference`] model retains. The victim scan stays a separate
        // pass so the common hit case never pays for it.
        let tags = &self.tags[base..base + self.ways];
        let stamps = &self.stamps[base..base + self.ways];
        let mut hit = usize::MAX;
        let mut w = 0usize;
        while w + 4 <= self.ways {
            let (s0, s1, s2, s3) = (stamps[w], stamps[w + 1], stamps[w + 2], stamps[w + 3]);
            let (t0, t1, t2, t3) = (tags[w], tags[w + 1], tags[w + 2], tags[w + 3]);
            if s0 != 0 && t0 == tag {
                hit = w;
            }
            if s1 != 0 && t1 == tag {
                hit = w + 1;
            }
            if s2 != 0 && t2 == tag {
                hit = w + 2;
            }
            if s3 != 0 && t3 == tag {
                hit = w + 3;
            }
            if hit != usize::MAX {
                break;
            }
            w += 4;
        }
        if hit == usize::MAX {
            while w < self.ways {
                if stamps[w] != 0 && tags[w] == tag {
                    hit = w;
                    break;
                }
                w += 1;
            }
        }
        if hit != usize::MAX {
            self.stamps[base + hit] = self.stamp;
            self.hits += 1;
            return (self.hit_latency, true);
        }
        self.misses += 1;
        // Miss path: fill the first empty slot, else evict the LRU way,
        // with a 4-wide unrolled minimum scan. Stamps are unique with
        // empty slots at 0, so the strict `<` keeps the first minimum —
        // the same victim `min_by_key` chose (empty slots sort first and
        // are filled before anything is evicted).
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        let mut w = 0usize;
        while w + 4 <= self.ways {
            let (s0, s1, s2, s3) = (stamps[w], stamps[w + 1], stamps[w + 2], stamps[w + 3]);
            if s0 < victim_stamp {
                victim_stamp = s0;
                victim = w;
            }
            if s1 < victim_stamp {
                victim_stamp = s1;
                victim = w + 1;
            }
            if s2 < victim_stamp {
                victim_stamp = s2;
                victim = w + 2;
            }
            if s3 < victim_stamp {
                victim_stamp = s3;
                victim = w + 3;
            }
            w += 4;
        }
        while w < self.ways {
            if stamps[w] < victim_stamp {
                victim_stamp = stamps[w];
                victim = w;
            }
            w += 1;
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.stamp;
        (self.hit_latency + self.dram.latency_cycles, false)
    }

    /// Total cycles for a sequence of word accesses.
    pub fn access_all(&mut self, addrs: impl IntoIterator<Item = u64>) -> u64 {
        addrs.into_iter().map(|a| self.access(a).0).sum()
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resets the statistics (not the contents).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Cycle attribution of all accesses since the last
    /// [`L2Cache::reset_stats`]: hit cycles are on-chip bandwidth
    /// (`DmaBandwidth`), miss cycles pay the DRAM round trip
    /// (`DmaLatency`). Sums to the total returned by the `access*` calls.
    pub fn breakdown(&self) -> CycleBreakdown {
        CycleBreakdown::new()
            .with(
                StallClass::DmaBandwidth,
                self.hits.saturating_mul(self.hit_latency),
            )
            .with(
                StallClass::DmaLatency,
                self.misses
                    .saturating_mul(self.hit_latency + self.dram.latency_cycles),
            )
    }
}

/// The retained `HashMap`-backed model — the observational-equivalence
/// oracle for the flat tag store above and the "pre" side of the `sim`
/// benchmark suite.
pub mod reference {
    use std::collections::HashMap;

    use super::*;

    /// `HashMap`-of-`Vec` counterpart of [`super::L2Cache`] (identical
    /// hit/miss/latency behaviour).
    #[derive(Clone, Debug)]
    pub struct L2Cache {
        line_words: u64,
        num_sets: u64,
        ways: usize,
        hit_latency: u64,
        dram: DramParams,
        /// set index → list of (tag, last-use stamp).
        sets: HashMap<u64, Vec<(u64, u64)>>,
        stamp: u64,
        hits: u64,
        misses: u64,
    }

    impl L2Cache {
        /// Creates a cache of `capacity_words` with the given associativity.
        ///
        /// # Panics
        ///
        /// Panics if any parameter is zero or `capacity_words` is smaller
        /// than one way of lines.
        pub fn new(capacity_words: u64, ways: usize, line_words: u64, dram: DramParams) -> L2Cache {
            assert!(
                capacity_words > 0 && ways > 0 && line_words > 0,
                "cache parameters must be non-zero"
            );
            let lines = capacity_words / line_words;
            let num_sets = (lines / ways as u64).max(1);
            L2Cache {
                line_words,
                num_sets,
                ways,
                hit_latency: 12,
                dram,
                sets: HashMap::new(),
                stamp: 0,
                hits: 0,
                misses: 0,
            }
        }

        /// A 512 KiW cache in the Chipyard style: 8-way, 8-word lines.
        pub fn chipyard_default() -> L2Cache {
            L2Cache::new(512 * 1024, 8, 8, DramParams::default())
        }

        /// Accesses one word; returns the access latency in cycles and
        /// whether it hit.
        pub fn access(&mut self, addr: u64) -> (u64, bool) {
            self.stamp += 1;
            let line = addr / self.line_words;
            let set = line % self.num_sets;
            let tag = line / self.num_sets;
            let entries = self.sets.entry(set).or_default();
            if let Some(e) = entries.iter_mut().find(|(t, _)| *t == tag) {
                e.1 = self.stamp;
                self.hits += 1;
                return (self.hit_latency, true);
            }
            self.misses += 1;
            if entries.len() >= self.ways {
                // Evict LRU.
                let lru = entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, s))| *s)
                    .map(|(n, _)| n)
                    .expect("non-empty set");
                entries.remove(lru);
            }
            entries.push((tag, self.stamp));
            (self.hit_latency + self.dram.latency_cycles, false)
        }

        /// Total cycles for a sequence of word accesses.
        pub fn access_all(&mut self, addrs: impl IntoIterator<Item = u64>) -> u64 {
            addrs.into_iter().map(|a| self.access(a).0).sum()
        }

        /// Hits so far.
        pub fn hits(&self) -> u64 {
            self.hits
        }

        /// Misses so far.
        pub fn misses(&self) -> u64 {
            self.misses
        }

        /// Hit rate in `[0, 1]`.
        pub fn hit_rate(&self) -> f64 {
            let total = self.hits + self.misses;
            if total == 0 {
                0.0
            } else {
                self.hits as f64 / total as f64
            }
        }

        /// Resets the statistics (not the contents).
        pub fn reset_stats(&mut self) {
            self.hits = 0;
            self.misses = 0;
        }

        /// Cycle attribution of all accesses since the last
        /// [`L2Cache::reset_stats`] (see [`super::L2Cache::breakdown`]).
        pub fn breakdown(&self) -> CycleBreakdown {
            CycleBreakdown::new()
                .with(
                    StallClass::DmaBandwidth,
                    self.hits.saturating_mul(self.hit_latency),
                )
                .with(
                    StallClass::DmaLatency,
                    self.misses
                        .saturating_mul(self.hit_latency + self.dram.latency_cycles),
                )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> L2Cache {
        L2Cache::new(64, 2, 4, DramParams::default()) // 16 lines, 8 sets
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = small();
        let (lat1, hit1) = c.access(0);
        let (lat2, hit2) = c.access(1); // same line
        assert!(!hit1 && hit2);
        assert!(lat1 > lat2);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn line_granularity() {
        let mut c = small();
        c.access(0);
        assert!(c.access(3).1, "same 4-word line must hit");
        assert!(!c.access(4).1, "next line must miss");
    }

    #[test]
    fn lru_eviction() {
        let mut c = small(); // 2 ways per set, 8 sets
                             // Three lines mapping to the same set (stride = sets * line = 32).
        c.access(0);
        c.access(32);
        c.access(0); // refresh line 0
        c.access(64); // evicts line 32 (LRU)
        assert!(c.access(0).1, "line 0 must survive");
        assert!(!c.access(32).1, "line 32 must have been evicted");
    }

    #[test]
    fn streaming_large_footprint_thrashes() {
        let mut c = small();
        // Stream far more than capacity, twice: second pass still misses.
        let addrs: Vec<u64> = (0..1024u64).map(|n| n * 4).collect();
        c.access_all(addrs.iter().copied());
        c.reset_stats();
        c.access_all(addrs.iter().copied());
        assert!(
            c.hit_rate() < 0.1,
            "thrashing stream should not hit, rate {}",
            c.hit_rate()
        );
    }

    #[test]
    fn small_footprint_reuse_hits() {
        let mut c = L2Cache::chipyard_default();
        let addrs: Vec<u64> = (0..4096u64).collect();
        c.access_all(addrs.iter().copied());
        c.reset_stats();
        c.access_all(addrs.iter().copied());
        assert!(
            c.hit_rate() > 0.99,
            "resident set must hit, rate {}",
            c.hit_rate()
        );
    }

    #[test]
    fn breakdown_matches_access_cycles() {
        use crate::trace::StallClass;
        let mut c = small();
        let total = c.access_all((0..256u64).map(|n| n * 2));
        let b = c.breakdown();
        assert_eq!(b.total(), total, "breakdown must account for every cycle");
        assert!(b.get(StallClass::DmaLatency) > 0, "cold stream must miss");
        c.reset_stats();
        assert_eq!(c.breakdown().total(), 0);
    }

    #[test]
    fn hit_rate_reduces_pointer_chase_cost() {
        // The §IV-F mitigation: scattered pointer reads with reuse become
        // L2 hits instead of DRAM round trips.
        let mut cold = L2Cache::chipyard_default();
        let ptrs: Vec<u64> = (0..1000u64).map(|n| n * 13 % 8000).collect();
        let first = cold.access_all(ptrs.iter().copied());
        let second = cold.access_all(ptrs.iter().copied());
        assert!(
            second < first / 2,
            "warm pointer reads must be much cheaper"
        );
    }

    #[test]
    fn flat_store_matches_reference_per_access() {
        // Every access outcome — latency and hit/miss — must match the
        // retained HashMap model, across conflict misses, evictions, and
        // re-references (unique stamps make LRU deterministic in both).
        let mut flat = small();
        let mut hash = reference::L2Cache::new(64, 2, 4, DramParams::default());
        let mut x = 0x2545F4914F6CDD1Du64;
        for n in 0..4096u64 {
            // A mix of a strided sweep and xorshift-scattered pointers.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = if n % 3 == 0 { n * 4 % 512 } else { x % 700 };
            assert_eq!(flat.access(addr), hash.access(addr), "access #{n}");
        }
        assert_eq!(flat.hits(), hash.hits());
        assert_eq!(flat.misses(), hash.misses());
        assert_eq!(flat.breakdown(), hash.breakdown());
    }
}
