//! The DMA/DRAM model: contiguous bursts vs latency-bound scattered
//! requests (§VI-C of the paper).
//!
//! Stellar's default DMA makes *one* new memory request per cycle and
//! tracks one outstanding miss. For contiguous tensors this saturates DRAM
//! bandwidth; for the scattered partial-sum *pointers* of an
//! OuterSPACE-style accelerator, every read returns a single scalar after a
//! full DRAM latency, and the control dependency (pointer → vector)
//! serializes behind it. Raising the number of independent outstanding
//! requests to 16 overlaps those latencies without adding bandwidth.
//!
//! The reliability layer ([`RetryPolicy`], [`DmaModel::reliable_contiguous_cycles`],
//! [`DmaModel::reliable_scattered_cycles`]) models per-request response
//! loss: a dropped response is noticed after a timeout, retried after an
//! exponentially growing backoff, and charged to the cycle count; a
//! duplicated response wastes one response-path beat. When a request
//! exhausts its retries the transfer can never complete — the engine is
//! wedged waiting on data that will not arrive — reported as
//! [`SimError::Deadlock`].

// The reliability layer must not itself panic: unwinding is denied in
// non-test code here.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable
    )
)]

use crate::engine::Engine;
use crate::error::{SimError, Watchdog};
use crate::fault::{DmaFault, FaultInjector};
use crate::trace::{CycleBreakdown, StallClass};

/// DRAM timing parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramParams {
    /// Round-trip latency of one request, cycles.
    pub latency_cycles: u64,
    /// Peak sequential bandwidth, words per cycle.
    pub words_per_cycle: f64,
}

impl Default for DramParams {
    fn default() -> DramParams {
        DramParams {
            latency_cycles: 60,
            words_per_cycle: 8.0,
        }
    }
}

/// A DMA with a configurable number of independent outstanding requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DmaModel {
    /// Independent outstanding request slots (1 = Stellar's default).
    pub slots: usize,
    /// The DRAM behind it.
    pub dram: DramParams,
}

impl DmaModel {
    /// A DMA with the given slot count over default DRAM.
    pub fn with_slots(slots: usize) -> DmaModel {
        DmaModel {
            slots: slots.max(1),
            dram: DramParams::default(),
        }
    }

    /// Cycles to move `words` contiguous words: one latency, then
    /// bandwidth-bound streaming.
    pub fn contiguous_cycles(&self, words: u64) -> u64 {
        if words == 0 {
            return 0;
        }
        self.dram.latency_cycles + (words as f64 / self.dram.words_per_cycle).ceil() as u64
    }

    /// Cycles to issue `requests` independent scattered requests of
    /// `words_each` words: each pays full latency, overlapped across the
    /// available slots, plus the bandwidth cost of the data itself.
    pub fn scattered_cycles(&self, requests: u64, words_each: u64) -> u64 {
        if requests == 0 {
            return 0;
        }
        // With S slots, a new request can retire every latency/S cycles
        // (pipelined); issue rate is also capped at 1/cycle.
        let per_req_latency = (self.dram.latency_cycles as f64 / self.slots as f64).max(1.0);
        let latency_bound = (requests as f64 * per_req_latency).ceil() as u64;
        let bw_bound =
            ((requests * words_each.max(1)) as f64 / self.dram.words_per_cycle).ceil() as u64;
        self.dram.latency_cycles + latency_bound.max(bw_bound)
    }

    /// Cycles for a *dependent* pointer-chase pattern: `chains` independent
    /// chains, each of `depth` serial pointer hops. Within a chain nothing
    /// overlaps; across chains the slots overlap.
    pub fn pointer_chase_cycles(&self, chains: u64, depth: u64) -> u64 {
        if chains == 0 || depth == 0 {
            return 0;
        }
        let serial = depth * self.dram.latency_cycles;
        let parallel = (chains as f64 / self.slots as f64).ceil() as u64;
        serial * parallel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn contiguous_is_bandwidth_bound() {
        let dma = DmaModel::with_slots(1);
        let c = dma.contiguous_cycles(8000);
        // 8000 words at 8 w/c = 1000 cycles + latency.
        assert_eq!(c, 60 + 1000);
        // Slots don't help contiguous transfers.
        assert_eq!(DmaModel::with_slots(16).contiguous_cycles(8000), c);
    }

    #[test]
    fn scattered_single_slot_is_latency_bound() {
        let dma = DmaModel::with_slots(1);
        // 1000 single-word requests: ~1 per 60 cycles.
        let c = dma.scattered_cycles(1000, 1);
        assert!(c >= 60_000, "expected latency-bound, got {c}");
    }

    #[test]
    fn sixteen_slots_overlap_latency() {
        let one = DmaModel::with_slots(1).scattered_cycles(1000, 1);
        let sixteen = DmaModel::with_slots(16).scattered_cycles(1000, 1);
        let speedup = one as f64 / sixteen as f64;
        assert!(
            (8.0..20.0).contains(&speedup),
            "16 slots should give order-of-magnitude overlap, got {speedup:.1}x"
        );
    }

    #[test]
    fn scattered_eventually_bandwidth_bound() {
        // With big payloads per request, bandwidth dominates and slots stop
        // helping.
        let one = DmaModel::with_slots(1).scattered_cycles(1000, 512);
        let sixteen = DmaModel::with_slots(16).scattered_cycles(1000, 512);
        assert_eq!(one, sixteen);
    }

    #[test]
    fn pointer_chase_serializes_depth() {
        let dma = DmaModel::with_slots(16);
        let shallow = dma.pointer_chase_cycles(16, 1);
        let deep = dma.pointer_chase_cycles(16, 4);
        assert_eq!(deep, 4 * shallow);
    }

    #[test]
    fn fault_free_reliable_matches_base_exactly() {
        use crate::fault::{FaultInjector, FaultPlan};
        let dma = DmaModel::with_slots(4);
        let mut inj = FaultInjector::new(FaultPlan::none());
        let wd = Watchdog::default_budget();
        let r = dma
            .reliable_contiguous_cycles(8000, &RetryPolicy::exponential(), &mut inj, &wd)
            .unwrap();
        assert_eq!(r.cycles, dma.contiguous_cycles(8000));
        assert_eq!((r.attempts, r.retries), (1, 0));
        let r = dma
            .reliable_scattered_cycles(100, 4, &RetryPolicy::exponential(), &mut inj, &wd)
            .unwrap();
        assert_eq!(r.cycles, dma.scattered_cycles(100, 4));
        assert_eq!((r.attempts, r.retries), (100, 0));
    }

    #[test]
    fn drops_cost_timeout_and_backoff() {
        use crate::fault::{FaultInjector, FaultPlan};
        let dma = DmaModel::with_slots(1);
        let mut plan = FaultPlan::none();
        plan.seed = 11;
        plan.dma_drop_per_request = 0.3;
        let mut inj = FaultInjector::new(plan);
        let wd = Watchdog::default_budget();
        let r = dma
            .reliable_scattered_cycles(200, 1, &RetryPolicy::exponential(), &mut inj, &wd)
            .unwrap();
        assert!(r.retries > 0, "30% drop rate must retry");
        assert!(
            r.cycles > dma.scattered_cycles(200, 1),
            "recovery must cost cycles"
        );
        assert_eq!(r.attempts, 200 + r.retries);
        assert_eq!(inj.counts.dma_dropped, r.retries);
    }

    #[test]
    fn retries_exhausted_is_a_deadlock() {
        use crate::fault::{FaultInjector, FaultPlan};
        let dma = DmaModel::with_slots(1);
        let mut plan = FaultPlan::none();
        plan.seed = 1;
        plan.dma_drop_per_request = 1.0; // every response lost
        let mut inj = FaultInjector::new(plan);
        let wd = Watchdog::default_budget();
        let err = dma
            .reliable_contiguous_cycles(64, &RetryPolicy::exponential(), &mut inj, &wd)
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "got {err:?}");
        // With no retries allowed, the very first drop wedges the transfer.
        let err = dma
            .reliable_scattered_cycles(10, 1, &RetryPolicy::none(), &mut inj, &wd)
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn duplicates_waste_one_beat_each() {
        use crate::fault::{FaultInjector, FaultPlan};
        let dma = DmaModel::with_slots(16);
        let mut plan = FaultPlan::none();
        plan.seed = 21;
        plan.dma_duplicate_per_request = 1.0;
        let mut inj = FaultInjector::new(plan);
        let wd = Watchdog::default_budget();
        let r = dma
            .reliable_scattered_cycles(160, 1, &RetryPolicy::exponential(), &mut inj, &wd)
            .unwrap();
        assert_eq!(r.duplicate_beats, 160);
        assert_eq!(r.cycles, dma.scattered_cycles(160, 1) + 160 / 16);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::exponential();
        assert_eq!(p.backoff_cycles(1), 8);
        assert_eq!(p.backoff_cycles(2), 16);
        assert_eq!(p.backoff_cycles(3), 32);
    }

    #[test]
    fn recovery_respects_watchdog() {
        use crate::fault::{FaultInjector, FaultPlan};
        let dma = DmaModel::with_slots(1);
        let mut plan = FaultPlan::none();
        plan.seed = 2;
        plan.dma_drop_per_request = 0.5;
        let mut inj = FaultInjector::new(plan);
        // Plenty of retries, so nothing wedges — but recovery cycles blow
        // straight past a 100-cycle budget.
        let policy = RetryPolicy {
            max_retries: 1000,
            base_backoff_cycles: 8,
            timeout_cycles: 240,
        };
        let err = dma
            .reliable_scattered_cycles(1000, 1, &policy, &mut inj, &Watchdog::with_budget(100))
            .unwrap_err();
        assert!(
            matches!(err, SimError::WatchdogExpired { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn zero_requests_zero_cycles() {
        let dma = DmaModel::with_slots(4);
        assert_eq!(dma.contiguous_cycles(0), 0);
        assert_eq!(dma.scattered_cycles(0, 8), 0);
        assert_eq!(dma.pointer_chase_cycles(0, 3), 0);
    }

    #[test]
    fn zero_words_skip_the_reliable_machinery() {
        // A zero-length transfer issues no request, so even a plan that
        // drops every response costs nothing and draws no randomness.
        let dma = DmaModel::with_slots(4);
        let mut plan = FaultPlan::none();
        plan.dma_drop_per_request = 1.0;
        let mut inj = FaultInjector::new(plan);
        let w = Watchdog::default_budget();
        let rep = dma
            .reliable_contiguous_cycles(0, &RetryPolicy::none(), &mut inj, &w)
            .unwrap();
        assert_eq!(rep, DmaTransferReport::default());
        let rep = dma
            .reliable_scattered_cycles(0, 8, &RetryPolicy::none(), &mut inj, &w)
            .unwrap();
        assert_eq!(rep, DmaTransferReport::default());
        assert_eq!(inj.counts.dma_dropped, 0);
    }

    #[test]
    fn more_slots_than_latency_cycles_is_well_behaved() {
        // With more outstanding-request slots than latency cycles, the
        // issue rate (one request per cycle) becomes the cap: extra slots
        // stop helping but never hurt or underflow.
        let narrow = DmaModel::with_slots(60); // slots == latency
        let wide = DmaModel::with_slots(1024); // slots >> latency
        for reqs in [1u64, 7, 100] {
            let n = narrow.scattered_cycles(reqs, 1);
            let w = wide.scattered_cycles(reqs, 1);
            assert!(w <= n, "more slots must never slow down ({w} > {n})");
            // Latency + at least one issue cycle per request.
            assert!(w >= narrow.dram.latency_cycles + reqs.min(1));
        }
        // Pointer chases collapse to one serial chain's latency.
        assert_eq!(
            wide.pointer_chase_cycles(100, 3),
            3 * wide.dram.latency_cycles
        );
    }

    #[test]
    fn report_breakdown_accounts_for_every_cycle() {
        use crate::fault::{FaultInjector, FaultPlan};
        use crate::trace::StallClass;
        let dma = DmaModel::with_slots(1);
        let mut plan = FaultPlan::none();
        plan.seed = 11;
        plan.dma_drop_per_request = 0.3;
        let mut inj = FaultInjector::new(plan);
        let wd = Watchdog::default_budget();
        let r = dma
            .reliable_scattered_cycles(200, 1, &RetryPolicy::exponential(), &mut inj, &wd)
            .unwrap();
        assert_eq!(r.breakdown.total(), r.cycles);
        assert!(r.breakdown.get(StallClass::FaultRecovery) > 0);
        // Single-word scattered requests on one slot are latency-bound.
        assert!(
            r.breakdown.get(StallClass::DmaLatency) > r.breakdown.get(StallClass::DmaBandwidth)
        );
        // A big contiguous burst is bandwidth-bound.
        let mut clean = FaultInjector::new(FaultPlan::none());
        let c = dma
            .reliable_contiguous_cycles(8000, &RetryPolicy::exponential(), &mut clean, &wd)
            .unwrap();
        assert_eq!(c.breakdown.total(), c.cycles);
        assert_eq!(c.breakdown.get(StallClass::DmaBandwidth), 1000);
        assert_eq!(c.breakdown.get(StallClass::DmaLatency), 60);
        assert_eq!(c.breakdown.get(StallClass::FaultRecovery), 0);
    }

    #[test]
    fn engine_path_matches_reference_closed_form() {
        // Same seed, same plan: the engine-backed paths must reproduce the
        // retained closed-form reports byte-for-byte, with identical
        // injector RNG draw order (checked via the fault counters).
        use crate::fault::FaultInjector;
        let wd = Watchdog::default_budget();
        for (drop, dup) in [(0.0, 0.0), (0.3, 0.0), (0.0, 0.5), (0.2, 0.2)] {
            let mut plan = FaultPlan::none();
            plan.seed = 17;
            plan.dma_drop_per_request = drop;
            plan.dma_duplicate_per_request = dup;
            for slots in [1usize, 4, 16] {
                let dma = DmaModel::with_slots(slots);
                let mut inj_a = FaultInjector::new(plan);
                let mut inj_b = FaultInjector::new(plan);
                let got = dma.reliable_contiguous_cycles(
                    8000,
                    &RetryPolicy::exponential(),
                    &mut inj_a,
                    &wd,
                );
                let want = reference::reliable_contiguous_cycles(
                    &dma,
                    8000,
                    &RetryPolicy::exponential(),
                    &mut inj_b,
                    &wd,
                );
                assert_eq!(got, want);
                let got = dma.reliable_scattered_cycles(
                    200,
                    3,
                    &RetryPolicy::exponential(),
                    &mut inj_a,
                    &wd,
                );
                let want = reference::reliable_scattered_cycles(
                    &dma,
                    200,
                    3,
                    &RetryPolicy::exponential(),
                    &mut inj_b,
                    &wd,
                );
                assert_eq!(got, want);
                assert_eq!(inj_a.counts, inj_b.counts);
            }
        }
    }

    #[test]
    fn recovery_penalty_monotone_in_retry_count() {
        // With the same seed, a request that needs n retries costs
        // strictly more cycles at every additional retry the policy
        // grants (timeout + growing backoff per round).
        let dma = DmaModel::with_slots(1);
        let mut cycles_at = Vec::new();
        for max_retries in 1u32..=4 {
            let mut plan = FaultPlan::none();
            plan.seed = 11;
            plan.dma_drop_per_request = 0.9;
            let mut inj = FaultInjector::new(plan);
            let policy = RetryPolicy {
                max_retries,
                base_backoff_cycles: 8,
                timeout_cycles: 240,
            };
            match dma.reliable_contiguous_cycles(64, &policy, &mut inj, &Watchdog::default_budget())
            {
                Ok(rep) => cycles_at.push(Some(rep.cycles)),
                Err(_) => cycles_at.push(None),
            }
        }
        // Every successful run with more retry rounds used at least as
        // many cycles as the previous successful one.
        let succeeded: Vec<u64> = cycles_at.iter().flatten().copied().collect();
        for pair in succeeded.windows(2) {
            assert!(pair[1] >= pair[0], "{cycles_at:?}");
        }
    }
}

/// Retry behaviour for lost DMA responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed per request before declaring the transfer wedged.
    pub max_retries: u32,
    /// Backoff before the first retry, cycles; doubles every further retry.
    pub base_backoff_cycles: u64,
    /// Cycles waited before a missing response is declared lost.
    pub timeout_cycles: u64,
}

impl RetryPolicy {
    /// No retries: the first dropped response wedges the transfer.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_backoff_cycles: 0,
            timeout_cycles: 240,
        }
    }

    /// The default resilient policy: 3 retries, exponential backoff from 8
    /// cycles, 240-cycle (4× default DRAM latency) timeout.
    pub fn exponential() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff_cycles: 8,
            timeout_cycles: 240,
        }
    }

    /// The backoff before retry number `retry` (1-based): `base << (retry-1)`.
    pub fn backoff_cycles(&self, retry: u32) -> u64 {
        self.base_backoff_cycles
            .saturating_mul(1u64 << (retry.saturating_sub(1)).min(62))
    }
}

/// The outcome of a reliable transfer: cycles including every recovery
/// penalty, plus how much recovering cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DmaTransferReport {
    /// Total cycles, fault-free base plus recovery penalties.
    pub cycles: u64,
    /// Request attempts issued (requests + retries).
    pub attempts: u64,
    /// Retries among those attempts.
    pub retries: u64,
    /// Extra response-path beats burned by duplicated responses.
    pub duplicate_beats: u64,
    /// Where every cycle went: `DmaLatency` for round-trip waits,
    /// `DmaBandwidth` for streaming beats, `FaultRecovery` for every
    /// recovery penalty (timeouts, backoffs, duplicated-response beats).
    /// Sums to `cycles`.
    pub breakdown: CycleBreakdown,
}

impl DmaModel {
    /// Drives one logical request through the injector and retry policy,
    /// returning its recovery penalty in cycles (0 when delivered clean on
    /// the first attempt).
    fn drive_request(
        &self,
        retry: &RetryPolicy,
        injector: &mut FaultInjector,
        report: &mut DmaTransferReport,
    ) -> Result<u64, SimError> {
        let mut penalty = 0u64;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            report.attempts += 1;
            match injector.dma_response_fault() {
                DmaFault::None => return Ok(penalty),
                DmaFault::Duplicated => {
                    report.duplicate_beats += 1;
                    return Ok(penalty + 1);
                }
                DmaFault::Dropped => {
                    if attempt > retry.max_retries {
                        return Err(SimError::Deadlock {
                            cycle: penalty + retry.timeout_cycles,
                            detail: format!(
                                "dma response lost, {} retries exhausted",
                                retry.max_retries
                            ),
                        });
                    }
                    report.retries += 1;
                    penalty += retry.timeout_cycles + retry.backoff_cycles(attempt);
                }
            }
        }
    }

    /// Finishes a request whose first attempt was already counted in
    /// `report.attempts` and came back dropped — the slow tail of the
    /// bulk duplicate-free request loop. Replicates the retry semantics
    /// of [`DmaModel::drive_request`] from its `Dropped` arm onward
    /// (attempt numbering, retry/attempt counters, penalty and deadlock
    /// accounting, one RNG draw per attempt), for plans that cannot
    /// duplicate responses.
    #[cold]
    fn recover_after_drop(
        &self,
        retry: &RetryPolicy,
        injector: &mut FaultInjector,
        report: &mut DmaTransferReport,
    ) -> Result<u64, SimError> {
        let mut penalty = 0u64;
        let mut attempt = 1u32;
        loop {
            if attempt > retry.max_retries {
                return Err(SimError::Deadlock {
                    cycle: penalty + retry.timeout_cycles,
                    detail: format!("dma response lost, {} retries exhausted", retry.max_retries),
                });
            }
            report.retries += 1;
            penalty += retry.timeout_cycles + retry.backoff_cycles(attempt);
            attempt += 1;
            report.attempts += 1;
            if !injector.dma_response_dropped() {
                return Ok(penalty);
            }
        }
    }

    /// [`DmaModel::contiguous_cycles`] under response loss: the single
    /// burst is retried per the policy, with timeout and backoff cycles
    /// charged on every loss. Fault-free plans reproduce the base cycle
    /// count exactly.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when retries are exhausted;
    /// [`SimError::WatchdogExpired`] when recovery pushes the transfer past
    /// the budget.
    pub fn reliable_contiguous_cycles(
        &self,
        words: u64,
        retry: &RetryPolicy,
        injector: &mut FaultInjector,
        watchdog: &Watchdog,
    ) -> Result<DmaTransferReport, SimError> {
        let mut report = DmaTransferReport::default();
        if words == 0 {
            return Ok(report);
        }
        let penalty = self.drive_request(retry, injector, &mut report)?;
        let base = self.contiguous_cycles(words);
        report.cycles = base + penalty;
        watchdog.check_total(report.cycles, "reliable contiguous dma")?;
        // Skip-ahead in three leaps: the round-trip wait, the streaming
        // beats, and whatever recovery cost the injector charged.
        let mut engine = Engine::new(*watchdog);
        engine.advance(
            self.dram.latency_cycles,
            StallClass::DmaLatency,
            "reliable contiguous dma",
        )?;
        engine.advance(
            base - self.dram.latency_cycles,
            StallClass::DmaBandwidth,
            "reliable contiguous dma",
        )?;
        engine.advance(
            penalty,
            StallClass::FaultRecovery,
            "reliable contiguous dma",
        )?;
        report.breakdown = engine.into_breakdown();
        report
            .breakdown
            .debug_assert_accounts_for(report.cycles, "reliable contiguous dma");
        Ok(report)
    }

    /// [`DmaModel::scattered_cycles`] under response loss: every request is
    /// retried independently, and recovery penalties overlap across the
    /// outstanding-request slots just like the base latencies do.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when any request exhausts its retries;
    /// [`SimError::WatchdogExpired`] past the budget.
    pub fn reliable_scattered_cycles(
        &self,
        requests: u64,
        words_each: u64,
        retry: &RetryPolicy,
        injector: &mut FaultInjector,
        watchdog: &Watchdog,
    ) -> Result<DmaTransferReport, SimError> {
        let mut report = DmaTransferReport::default();
        if requests == 0 {
            return Ok(report);
        }
        let mut penalty_sum = 0u64;
        if injector.plan().dma_duplicate_per_request <= 0.0 {
            // Bulk fast path for duplicate-free plans: every request's
            // first attempt is booked up front, each request costs one
            // drop draw (identical RNG sequence — the duplicate check
            // draws nothing at probability zero), and only the rare
            // dropped request takes the out-of-line recovery tail.
            report.attempts += requests;
            for _ in 0..requests {
                if injector.dma_response_dropped() {
                    penalty_sum += self.recover_after_drop(retry, injector, &mut report)?;
                }
            }
        } else {
            for _ in 0..requests {
                penalty_sum += self.drive_request(retry, injector, &mut report)?;
            }
        }
        // Recovery penalties of independent requests overlap across slots.
        let overlapped = (penalty_sum as f64 / self.slots.max(1) as f64).ceil() as u64;
        report.cycles = self.scattered_cycles(requests, words_each) + overlapped;
        watchdog.check_total(report.cycles, "reliable scattered dma")?;
        // Attribute the dominant bound of the base model: when the
        // request rate limits the transfer the wait is latency, when the
        // payload does it is bandwidth.
        let per_req_latency = (self.dram.latency_cycles as f64 / self.slots as f64).max(1.0);
        let latency_bound = (requests as f64 * per_req_latency).ceil() as u64;
        let bw_bound =
            ((requests * words_each.max(1)) as f64 / self.dram.words_per_cycle).ceil() as u64;
        let bound_class = if latency_bound >= bw_bound {
            StallClass::DmaLatency
        } else {
            StallClass::DmaBandwidth
        };
        // Skip-ahead in three leaps: first-response wait, the overlapped
        // recovery penalty, then the dominant steady-state bound.
        let mut engine = Engine::new(*watchdog);
        engine.advance(
            self.dram.latency_cycles,
            StallClass::DmaLatency,
            "reliable scattered dma",
        )?;
        engine.advance(
            overlapped,
            StallClass::FaultRecovery,
            "reliable scattered dma",
        )?;
        engine.advance(
            latency_bound.max(bw_bound),
            bound_class,
            "reliable scattered dma",
        )?;
        report.breakdown = engine.into_breakdown();
        report
            .breakdown
            .debug_assert_accounts_for(report.cycles, "reliable scattered dma");
        Ok(report)
    }
}

/// The retained closed-form accountings — the observational-equivalence
/// oracle for the engine-backed reliable transfer paths above and the
/// "pre" side of the `sim` benchmark suite.
pub mod reference {
    use super::*;

    /// Closed-form counterpart of [`DmaModel::reliable_contiguous_cycles`]
    /// (identical observable behaviour, including injector draw order).
    ///
    /// # Errors
    ///
    /// Identical to [`DmaModel::reliable_contiguous_cycles`].
    pub fn reliable_contiguous_cycles(
        dma: &DmaModel,
        words: u64,
        retry: &RetryPolicy,
        injector: &mut FaultInjector,
        watchdog: &Watchdog,
    ) -> Result<DmaTransferReport, SimError> {
        let mut report = DmaTransferReport::default();
        if words == 0 {
            return Ok(report);
        }
        let penalty = dma.drive_request(retry, injector, &mut report)?;
        report.cycles = dma.contiguous_cycles(words) + penalty;
        report.breakdown = CycleBreakdown::new()
            .with(StallClass::DmaLatency, dma.dram.latency_cycles)
            .with(
                StallClass::DmaBandwidth,
                dma.contiguous_cycles(words) - dma.dram.latency_cycles,
            )
            .with(StallClass::FaultRecovery, penalty);
        report
            .breakdown
            .debug_assert_accounts_for(report.cycles, "reliable contiguous dma");
        watchdog.check_total(report.cycles, "reliable contiguous dma")?;
        Ok(report)
    }

    /// Closed-form counterpart of [`DmaModel::reliable_scattered_cycles`]
    /// (identical observable behaviour, including injector draw order).
    ///
    /// # Errors
    ///
    /// Identical to [`DmaModel::reliable_scattered_cycles`].
    pub fn reliable_scattered_cycles(
        dma: &DmaModel,
        requests: u64,
        words_each: u64,
        retry: &RetryPolicy,
        injector: &mut FaultInjector,
        watchdog: &Watchdog,
    ) -> Result<DmaTransferReport, SimError> {
        let mut report = DmaTransferReport::default();
        if requests == 0 {
            return Ok(report);
        }
        let mut penalty_sum = 0u64;
        for _ in 0..requests {
            penalty_sum += dma.drive_request(retry, injector, &mut report)?;
        }
        // Recovery penalties of independent requests overlap across slots.
        let overlapped = (penalty_sum as f64 / dma.slots.max(1) as f64).ceil() as u64;
        report.cycles = dma.scattered_cycles(requests, words_each) + overlapped;
        // Attribute the dominant bound of the base model: when the
        // request rate limits the transfer the wait is latency, when the
        // payload does it is bandwidth.
        let per_req_latency = (dma.dram.latency_cycles as f64 / dma.slots as f64).max(1.0);
        let latency_bound = (requests as f64 * per_req_latency).ceil() as u64;
        let bw_bound =
            ((requests * words_each.max(1)) as f64 / dma.dram.words_per_cycle).ceil() as u64;
        let bound_class = if latency_bound >= bw_bound {
            StallClass::DmaLatency
        } else {
            StallClass::DmaBandwidth
        };
        report.breakdown = CycleBreakdown::new()
            .with(StallClass::DmaLatency, dma.dram.latency_cycles)
            .with(StallClass::FaultRecovery, overlapped);
        report
            .breakdown
            .add(bound_class, latency_bound.max(bw_bound));
        report
            .breakdown
            .debug_assert_accounts_for(report.cycles, "reliable scattered dma");
        watchdog.check_total(report.cycles, "reliable scattered dma")?;
        Ok(report)
    }
}
