//! The DMA/DRAM model: contiguous bursts vs latency-bound scattered
//! requests (§VI-C of the paper).
//!
//! Stellar's default DMA makes *one* new memory request per cycle and
//! tracks one outstanding miss. For contiguous tensors this saturates DRAM
//! bandwidth; for the scattered partial-sum *pointers* of an
//! OuterSPACE-style accelerator, every read returns a single scalar after a
//! full DRAM latency, and the control dependency (pointer → vector)
//! serializes behind it. Raising the number of independent outstanding
//! requests to 16 overlaps those latencies without adding bandwidth.

/// DRAM timing parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramParams {
    /// Round-trip latency of one request, cycles.
    pub latency_cycles: u64,
    /// Peak sequential bandwidth, words per cycle.
    pub words_per_cycle: f64,
}

impl Default for DramParams {
    fn default() -> DramParams {
        DramParams {
            latency_cycles: 60,
            words_per_cycle: 8.0,
        }
    }
}

/// A DMA with a configurable number of independent outstanding requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DmaModel {
    /// Independent outstanding request slots (1 = Stellar's default).
    pub slots: usize,
    /// The DRAM behind it.
    pub dram: DramParams,
}

impl DmaModel {
    /// A DMA with the given slot count over default DRAM.
    pub fn with_slots(slots: usize) -> DmaModel {
        DmaModel {
            slots: slots.max(1),
            dram: DramParams::default(),
        }
    }

    /// Cycles to move `words` contiguous words: one latency, then
    /// bandwidth-bound streaming.
    pub fn contiguous_cycles(&self, words: u64) -> u64 {
        if words == 0 {
            return 0;
        }
        self.dram.latency_cycles + (words as f64 / self.dram.words_per_cycle).ceil() as u64
    }

    /// Cycles to issue `requests` independent scattered requests of
    /// `words_each` words: each pays full latency, overlapped across the
    /// available slots, plus the bandwidth cost of the data itself.
    pub fn scattered_cycles(&self, requests: u64, words_each: u64) -> u64 {
        if requests == 0 {
            return 0;
        }
        // With S slots, a new request can retire every latency/S cycles
        // (pipelined); issue rate is also capped at 1/cycle.
        let per_req_latency = (self.dram.latency_cycles as f64 / self.slots as f64).max(1.0);
        let latency_bound = (requests as f64 * per_req_latency).ceil() as u64;
        let bw_bound =
            ((requests * words_each.max(1)) as f64 / self.dram.words_per_cycle).ceil() as u64;
        self.dram.latency_cycles + latency_bound.max(bw_bound)
    }

    /// Cycles for a *dependent* pointer-chase pattern: `chains` independent
    /// chains, each of `depth` serial pointer hops. Within a chain nothing
    /// overlaps; across chains the slots overlap.
    pub fn pointer_chase_cycles(&self, chains: u64, depth: u64) -> u64 {
        if chains == 0 || depth == 0 {
            return 0;
        }
        let serial = depth * self.dram.latency_cycles;
        let parallel = (chains as f64 / self.slots as f64).ceil() as u64;
        serial * parallel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_is_bandwidth_bound() {
        let dma = DmaModel::with_slots(1);
        let c = dma.contiguous_cycles(8000);
        // 8000 words at 8 w/c = 1000 cycles + latency.
        assert_eq!(c, 60 + 1000);
        // Slots don't help contiguous transfers.
        assert_eq!(DmaModel::with_slots(16).contiguous_cycles(8000), c);
    }

    #[test]
    fn scattered_single_slot_is_latency_bound() {
        let dma = DmaModel::with_slots(1);
        // 1000 single-word requests: ~1 per 60 cycles.
        let c = dma.scattered_cycles(1000, 1);
        assert!(c >= 60_000, "expected latency-bound, got {c}");
    }

    #[test]
    fn sixteen_slots_overlap_latency() {
        let one = DmaModel::with_slots(1).scattered_cycles(1000, 1);
        let sixteen = DmaModel::with_slots(16).scattered_cycles(1000, 1);
        let speedup = one as f64 / sixteen as f64;
        assert!(
            (8.0..20.0).contains(&speedup),
            "16 slots should give order-of-magnitude overlap, got {speedup:.1}x"
        );
    }

    #[test]
    fn scattered_eventually_bandwidth_bound() {
        // With big payloads per request, bandwidth dominates and slots stop
        // helping.
        let one = DmaModel::with_slots(1).scattered_cycles(1000, 512);
        let sixteen = DmaModel::with_slots(16).scattered_cycles(1000, 512);
        assert_eq!(one, sixteen);
    }

    #[test]
    fn pointer_chase_serializes_depth() {
        let dma = DmaModel::with_slots(16);
        let shallow = dma.pointer_chase_cycles(16, 1);
        let deep = dma.pointer_chase_cycles(16, 4);
        assert_eq!(deep, 4 * shallow);
    }

    #[test]
    fn zero_requests_zero_cycles() {
        let dma = DmaModel::with_slots(4);
        assert_eq!(dma.contiguous_cycles(0), 0);
        assert_eq!(dma.scattered_cycles(0, 8), 0);
        assert_eq!(dma.pointer_chase_cycles(0, 3), 0);
    }
}
