//! Cycle-attributed event tracing and the shared stall taxonomy.
//!
//! The paper's evaluation (Figures 15–19) rests on *explaining* cycle
//! counts — which cycles went to compute, pipeline fill/drain, DMA
//! latency, or load imbalance. Every simulation model in this crate
//! classifies each elapsed cycle into one [`StallClass`] of a shared
//! taxonomy, accumulated in a [`CycleBreakdown`] carried on
//! [`crate::SimStats`]; in debug builds the categories are asserted to sum
//! exactly to the reported cycle count.
//!
//! An optional [`Tracer`] additionally records per-PE / per-lane spans in
//! a bounded ring buffer and exports them as Chrome `trace_event` JSON
//! (loadable in Perfetto or `chrome://tracing`) or a flat CSV. Tracing is
//! zero-cost when disabled: a disabled tracer's [`Tracer::span`] is a
//! single branch on a bool and allocates nothing.

// The observability layer must not itself panic in release builds.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable
    )
)]

use std::fmt;

/// Where one simulated cycle went — the shared stall taxonomy.
///
/// Every model maps its cycles onto these classes (the per-model mapping
/// is documented in `DESIGN.md` § Observability):
///
/// * `Compute` — useful arithmetic progressing at full issue.
/// * `Fill` — pipeline fill: weight preload, skew-in, merge startup.
/// * `Drain` — pipeline drain: skew-out, result write-back windows.
/// * `DmaLatency` — cycles exposed to the DRAM round-trip latency.
/// * `DmaBandwidth` — cycles bound by DRAM streaming bandwidth.
/// * `BankConflict` — cycles stalled on scratchpad/SRAM port bandwidth.
/// * `LoadImbalance` — some lanes busy, others idle with no stealable work.
/// * `MergeStall` — merger-specific overhead (row switches, ragged pops).
/// * `FaultRecovery` — timeout/backoff/retry cycles of the fault layer.
/// * `Idle` — accounted control overhead and truly dead cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallClass {
    /// Useful arithmetic at full issue.
    Compute,
    /// Pipeline fill (preload, skew-in, startup).
    Fill,
    /// Pipeline drain (skew-out, write-back).
    Drain,
    /// Exposed DRAM round-trip latency.
    DmaLatency,
    /// DRAM streaming-bandwidth bound.
    DmaBandwidth,
    /// Scratchpad/SRAM port-bandwidth stalls.
    BankConflict,
    /// Lanes idle behind imbalanced work.
    LoadImbalance,
    /// Merger row-switch / ragged-pop overhead.
    MergeStall,
    /// Fault-injection recovery (timeouts, backoff, retries).
    FaultRecovery,
    /// Control overhead and dead cycles.
    Idle,
}

impl StallClass {
    /// Every class, in the canonical (serialization) order.
    pub const ALL: [StallClass; 10] = [
        StallClass::Compute,
        StallClass::Fill,
        StallClass::Drain,
        StallClass::DmaLatency,
        StallClass::DmaBandwidth,
        StallClass::BankConflict,
        StallClass::LoadImbalance,
        StallClass::MergeStall,
        StallClass::FaultRecovery,
        StallClass::Idle,
    ];

    /// The stable snake_case name used in every export format.
    pub fn name(self) -> &'static str {
        match self {
            StallClass::Compute => "compute",
            StallClass::Fill => "fill",
            StallClass::Drain => "drain",
            StallClass::DmaLatency => "dma_latency",
            StallClass::DmaBandwidth => "dma_bandwidth",
            StallClass::BankConflict => "bank_conflict",
            StallClass::LoadImbalance => "load_imbalance",
            StallClass::MergeStall => "merge_stall",
            StallClass::FaultRecovery => "fault_recovery",
            StallClass::Idle => "idle",
        }
    }

    fn index(self) -> usize {
        match self {
            StallClass::Compute => 0,
            StallClass::Fill => 1,
            StallClass::Drain => 2,
            StallClass::DmaLatency => 3,
            StallClass::DmaBandwidth => 4,
            StallClass::BankConflict => 5,
            StallClass::LoadImbalance => 6,
            StallClass::MergeStall => 7,
            StallClass::FaultRecovery => 8,
            StallClass::Idle => 9,
        }
    }
}

impl fmt::Display for StallClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cycles attributed to each [`StallClass`] — the per-run cycle account.
///
/// The invariant every model maintains is `total() == stats.cycles`;
/// [`CycleBreakdown::debug_assert_accounts_for`] checks it in debug
/// builds at every `simulate_*` exit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CycleBreakdown {
    cycles: [u64; 10],
}

impl CycleBreakdown {
    /// An empty breakdown (all classes zero).
    pub fn new() -> CycleBreakdown {
        CycleBreakdown::default()
    }

    /// Attributes `cycles` more cycles to `class` (saturating).
    #[inline]
    pub fn add(&mut self, class: StallClass, cycles: u64) {
        let c = &mut self.cycles[class.index()];
        *c = c.saturating_add(cycles);
    }

    /// Builder form of [`CycleBreakdown::add`].
    pub fn with(mut self, class: StallClass, cycles: u64) -> CycleBreakdown {
        self.add(class, cycles);
        self
    }

    /// Cycles attributed to `class`.
    pub fn get(&self, class: StallClass) -> u64 {
        self.cycles[class.index()]
    }

    /// Sum over all classes (saturating).
    pub fn total(&self) -> u64 {
        self.cycles.iter().fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// The class with the most cycles, or `None` when empty.
    pub fn dominant(&self) -> Option<StallClass> {
        StallClass::ALL
            .into_iter()
            .filter(|&c| self.get(c) > 0)
            .max_by_key(|&c| self.get(c))
    }

    /// The fraction of `self.total()` attributed to `class` (0 when empty).
    ///
    /// Structurally bounded to `[0, 1]` with no clamp needed: the
    /// denominator is the saturating sum over all classes, which can
    /// never fall below any single class's count — unlike
    /// [`Utilization::fraction`](crate::stats::Utilization::fraction),
    /// whose `busy`/`total` come from independent counters and must be
    /// clamped.
    pub fn fraction(&self, class: StallClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(class) as f64 / total as f64
        }
    }

    /// Merges two breakdowns class-wise (saturating) — the breakdown
    /// analogue of [`crate::SimStats::then`].
    pub fn merge(self, o: CycleBreakdown) -> CycleBreakdown {
        let mut out = self;
        for class in StallClass::ALL {
            out.add(class, o.get(class));
        }
        out
    }

    /// Debug-build check that the categories sum exactly to `cycles` — the
    /// invariant every `simulate_*` entry point maintains.
    #[inline]
    pub fn debug_assert_accounts_for(&self, cycles: u64, what: &str) {
        debug_assert_eq!(
            self.total(),
            cycles,
            "{what}: cycle breakdown {self:?} does not sum to {cycles} cycles"
        );
    }

    /// Serializes as a stable JSON object, classes in canonical order,
    /// zero classes included (schema stability over compactness).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (n, class) in StallClass::ALL.into_iter().enumerate() {
            if n > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", class.name(), self.get(class)));
        }
        s.push('}');
        s
    }
}

/// One traced span: `[start, start + dur)` cycles on a track (a PE, lane,
/// or engine), attributed to a stall class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The track (PE row, lane index, engine id) the span belongs to.
    pub track: u32,
    /// A short static label ("stream", "row", "preload", …).
    pub name: &'static str,
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles (0-length instants are allowed).
    pub dur: u64,
    /// The stall class of the span.
    pub class: StallClass,
}

/// A bounded, ring-buffer-backed span recorder.
///
/// Memory is bounded by the capacity chosen at construction: once full,
/// the oldest span is overwritten and counted in [`Tracer::dropped`].
/// A tracer built with [`Tracer::disabled`] records nothing and allocates
/// nothing — the per-span cost is one branch.
#[derive(Clone, Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    /// Ring storage; `head` is the index of the oldest event once full.
    events: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
}

/// The default ring capacity: enough for every experiment in the suite
/// while bounding memory to a few MiB.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

impl Tracer {
    /// A disabled tracer: every record is a no-op, nothing allocates.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            capacity: 0,
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// An enabled tracer with the default ring capacity.
    pub fn enabled() -> Tracer {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled tracer bounded to `capacity` spans (min 1).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            enabled: true,
            capacity: capacity.max(1),
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one span. No-op (one branch) when disabled; overwrites the
    /// oldest span when the ring is full.
    #[inline]
    pub fn span(
        &mut self,
        track: u32,
        name: &'static str,
        start: u64,
        dur: u64,
        class: StallClass,
    ) {
        if !self.enabled {
            return;
        }
        let ev = TraceEvent {
            track,
            name,
            start,
            dur,
            class,
        };
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records a zero-length instant event.
    #[inline]
    pub fn instant(&mut self, track: u32, name: &'static str, cycle: u64, class: StallClass) {
        self.span(track, name, cycle, 0, class);
    }

    /// Appends every span of `other`, oldest first — the deterministic
    /// merge used when independent simulations trace into private
    /// per-run tracers that are then folded into one report in a fixed
    /// order (spans are cycle-stamped, so recording order is the only
    /// thing the merge has to preserve). No-op when `self` is disabled.
    pub fn absorb(&mut self, other: &Tracer) {
        if !self.enabled {
            return;
        }
        for ev in other.events() {
            let ev = *ev;
            self.span(ev.track, ev.name, ev.start, ev.dur, ev.class);
        }
    }

    /// Spans currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no spans are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held spans in recording order (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, start) = self.events.split_at(self.head.min(self.events.len()));
        start.iter().chain(wrapped.iter())
    }

    /// Exports the Chrome `trace_event` JSON format (complete "X" events),
    /// loadable in Perfetto or `chrome://tracing`. One simulated cycle is
    /// reported as one microsecond (`ts`/`dur` are in µs in the format).
    pub fn to_chrome_json(&self) -> String {
        let mut s = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (n, ev) in self.events().enumerate() {
            if n > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"class\":\"{}\"}}}}",
                ev.name,
                ev.class.name(),
                ev.start,
                ev.dur.max(1),
                ev.track,
                ev.class.name(),
            ));
        }
        s.push_str("]}");
        s
    }

    /// Exports a flat CSV (`track,name,start,dur,class`), oldest first.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("track,name,start,dur,class\n");
        for ev in self.events() {
            s.push_str(&format!(
                "{},{},{},{},{}\n",
                ev.track,
                ev.name,
                ev.start,
                ev.dur,
                ev.class.name()
            ));
        }
        s
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

/// Classifies a scheduled IR run (the per-time-step busy profile the
/// `stellar-core` executor reports) into a [`CycleBreakdown`]: full steps
/// are `Compute`, partial steps before the first full step are `Fill`,
/// partial steps after the last full step are `Drain`, partial steps in
/// between are `LoadImbalance`, and empty steps are `Idle`.
pub fn breakdown_of_schedule(busy_per_step: &[u64]) -> CycleBreakdown {
    let peak = busy_per_step.iter().copied().max().unwrap_or(0);
    let first_full = busy_per_step.iter().position(|&b| b == peak);
    let last_full = busy_per_step.iter().rposition(|&b| b == peak);
    let mut out = CycleBreakdown::new();
    for (n, &busy) in busy_per_step.iter().enumerate() {
        let class = if busy == 0 {
            StallClass::Idle
        } else if busy == peak {
            StallClass::Compute
        } else if first_full.is_some_and(|f| n < f) {
            StallClass::Fill
        } else if last_full.is_some_and(|l| n > l) {
            StallClass::Drain
        } else {
            StallClass::LoadImbalance
        };
        out.add(class, 1);
    }
    out.debug_assert_accounts_for(busy_per_step.len() as u64, "schedule profile");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_sums() {
        let mut b = CycleBreakdown::new();
        b.add(StallClass::Compute, 10);
        b.add(StallClass::Fill, 3);
        b.add(StallClass::Compute, 5);
        assert_eq!(b.get(StallClass::Compute), 15);
        assert_eq!(b.total(), 18);
        b.debug_assert_accounts_for(18, "test");
        assert_eq!(b.dominant(), Some(StallClass::Compute));
    }

    #[test]
    fn breakdown_merge_is_classwise() {
        let a = CycleBreakdown::new().with(StallClass::Compute, 4);
        let b = CycleBreakdown::new()
            .with(StallClass::Compute, 1)
            .with(StallClass::Idle, 2);
        let m = a.merge(b);
        assert_eq!(m.get(StallClass::Compute), 5);
        assert_eq!(m.get(StallClass::Idle), 2);
        assert_eq!(m.total(), 7);
    }

    #[test]
    fn breakdown_saturates() {
        let mut b = CycleBreakdown::new();
        b.add(StallClass::Compute, u64::MAX);
        b.add(StallClass::Compute, 10);
        assert_eq!(b.get(StallClass::Compute), u64::MAX);
        let m = b.merge(b);
        assert_eq!(m.get(StallClass::Compute), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "does not sum")]
    #[cfg(debug_assertions)]
    fn debug_assert_catches_leaks() {
        let b = CycleBreakdown::new().with(StallClass::Compute, 3);
        b.debug_assert_accounts_for(4, "leaky model");
    }

    #[test]
    fn json_has_every_class_in_order() {
        let b = CycleBreakdown::new().with(StallClass::DmaLatency, 7);
        let j = b.to_json();
        assert!(j.starts_with("{\"compute\":0,"));
        assert!(j.contains("\"dma_latency\":7"));
        assert!(j.ends_with("\"idle\":0}"));
        // All 10 classes present.
        assert_eq!(j.matches(':').count(), 10);
    }

    #[test]
    fn fractions() {
        let b = CycleBreakdown::new()
            .with(StallClass::Compute, 3)
            .with(StallClass::Idle, 1);
        assert!((b.fraction(StallClass::Compute) - 0.75).abs() < 1e-12);
        assert_eq!(CycleBreakdown::new().fraction(StallClass::Compute), 0.0);
    }

    #[test]
    fn fraction_is_structurally_bounded() {
        // Even at saturating extremes, no class's share can exceed 1.0 —
        // the denominator includes every class's own count.
        let b = CycleBreakdown::new()
            .with(StallClass::Compute, u64::MAX)
            .with(StallClass::Idle, u64::MAX);
        for class in StallClass::ALL {
            let f = b.fraction(class);
            assert!((0.0..=1.0).contains(&f), "{class:?}: {f}");
        }
        let solo = CycleBreakdown::new().with(StallClass::Fill, 42);
        assert_eq!(solo.fraction(StallClass::Fill), 1.0);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.span(0, "x", 0, 5, StallClass::Compute);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(
            t.to_chrome_json(),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn ring_buffer_bounds_memory() {
        let mut t = Tracer::with_capacity(4);
        for n in 0..10u64 {
            t.span(0, "s", n, 1, StallClass::Compute);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        // Oldest-first iteration yields the last 4 spans.
        let starts: Vec<u64> = t.events().map(|e| e.start).collect();
        assert_eq!(starts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn absorb_appends_in_recording_order() {
        let mut a = Tracer::with_capacity(8);
        a.span(0, "x", 0, 2, StallClass::Compute);
        let mut b = Tracer::with_capacity(8);
        b.span(1, "y", 1, 3, StallClass::Fill);
        b.span(2, "z", 4, 1, StallClass::Drain);
        a.absorb(&b);
        let starts: Vec<u64> = a.events().map(|e| e.start).collect();
        assert_eq!(starts, vec![0, 1, 4]);
        // A disabled target stays empty (and allocation-free).
        let mut off = Tracer::disabled();
        off.absorb(&b);
        assert!(off.is_empty());
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Tracer::with_capacity(8);
        t.span(1, "row", 3, 4, StallClass::LoadImbalance);
        t.instant(2, "fault", 9, StallClass::FaultRecovery);
        let j = t.to_chrome_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"tid\":1"));
        assert!(j.contains("\"cat\":\"load_imbalance\""));
        // Instants get a minimum visible duration of 1.
        assert!(j.contains("\"ts\":9,\"dur\":1"));
        assert_eq!(j.matches("{\"name\"").count(), 2);
    }

    #[test]
    fn csv_export() {
        let mut t = Tracer::with_capacity(8);
        t.span(0, "preload", 0, 4, StallClass::Fill);
        let csv = t.to_csv();
        assert_eq!(csv, "track,name,start,dur,class\n0,preload,0,4,fill\n");
    }

    #[test]
    fn schedule_profile_classification() {
        // fill, fill, full, full, partial-mid, full, drain, idle
        let b = breakdown_of_schedule(&[1, 2, 4, 4, 3, 4, 2, 0]);
        assert_eq!(b.get(StallClass::Fill), 2);
        assert_eq!(b.get(StallClass::Compute), 3);
        assert_eq!(b.get(StallClass::LoadImbalance), 1);
        assert_eq!(b.get(StallClass::Drain), 1);
        assert_eq!(b.get(StallClass::Idle), 1);
        assert_eq!(b.total(), 8);
        assert_eq!(breakdown_of_schedule(&[]).total(), 0);
    }

    #[test]
    fn class_names_are_stable() {
        for c in StallClass::ALL {
            assert!(!c.name().is_empty());
            assert_eq!(c.to_string(), c.name());
        }
        assert_eq!(StallClass::ALL.len(), 10);
    }
}
