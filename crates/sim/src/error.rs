//! Simulation errors and the watchdog that bounds every simulation loop.
//!
//! FireSim runs of buggy generated designs hang silently; the software
//! simulator must not. Every `simulate_*` entry point in this crate takes
//! (or defaults) a cycle budget, checks it through a [`Watchdog`], and
//! returns `Result<_, SimError>` instead of looping unbounded. The same
//! error type reports deadlocks detected structurally (no lane can make
//! progress while work remains) and unrecoverable injected faults (DMA
//! retries exhausted).

// The resilience layer must not itself panic: unwinding is denied in
// non-test code here.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable
    )
)]

use std::error::Error;
use std::fmt;

/// The default watchdog budget, cycles. Generous enough for every workload
/// in the experiment suite while still terminating a runaway loop quickly.
pub const DEFAULT_WATCHDOG_BUDGET: u64 = 100_000_000;

/// Errors produced by the cycle-level simulators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No agent can make progress but work remains (detected structurally,
    /// before the watchdog fires).
    Deadlock {
        /// The cycle at which the deadlock was detected.
        cycle: u64,
        /// What was still pending.
        detail: String,
    },
    /// The simulation is still making (apparent) progress past its cycle
    /// budget — a livelock or a mis-sized budget.
    WatchdogExpired {
        /// The budget that was exhausted.
        budget: u64,
        /// Which simulation loop expired.
        detail: String,
    },
    /// An injected fault exceeded the recovery mechanisms (e.g. DMA retries
    /// exhausted, uncorrectable ECC word consumed by control logic).
    FaultUnrecovered {
        /// The cycle of the unrecoverable fault.
        cycle: u64,
        /// What failed.
        detail: String,
    },
    /// The simulation parameters are inconsistent (zero bandwidth, empty
    /// array, …).
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::WatchdogExpired { budget, detail } => {
                write!(f, "watchdog expired after {budget} cycles: {detail}")
            }
            SimError::FaultUnrecovered { cycle, detail } => {
                write!(f, "unrecovered fault at cycle {cycle}: {detail}")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
        }
    }
}

impl Error for SimError {}

/// A cycle-budget watchdog: every simulation loop ticks one of these and
/// aborts with [`SimError::WatchdogExpired`] when the budget runs out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Watchdog {
    budget: u64,
    elapsed: u64,
}

impl Watchdog {
    /// A watchdog with the given cycle budget.
    pub fn with_budget(budget: u64) -> Watchdog {
        Watchdog { budget, elapsed: 0 }
    }

    /// The default watchdog ([`DEFAULT_WATCHDOG_BUDGET`] cycles).
    pub fn default_budget() -> Watchdog {
        Watchdog::with_budget(DEFAULT_WATCHDOG_BUDGET)
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Cycles consumed so far.
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// Advances `cycles` and fails if the budget is exhausted. `what` names
    /// the loop for the error message.
    pub fn tick(&mut self, cycles: u64, what: &str) -> Result<(), SimError> {
        self.elapsed = self.elapsed.saturating_add(cycles);
        if self.elapsed > self.budget {
            Err(SimError::WatchdogExpired {
                budget: self.budget,
                detail: what.to_string(),
            })
        } else {
            Ok(())
        }
    }

    /// Checks a precomputed cycle count against the budget without
    /// advancing — used by the analytic (closed-form) models, which know
    /// their total up front.
    pub fn check_total(&self, cycles: u64, what: &str) -> Result<(), SimError> {
        if cycles > self.budget {
            Err(SimError::WatchdogExpired {
                budget: self.budget,
                detail: format!("{what} needs {cycles} cycles"),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_within_budget() {
        let mut w = Watchdog::with_budget(10);
        for _ in 0..10 {
            w.tick(1, "loop").unwrap();
        }
        assert_eq!(w.elapsed(), 10);
        let err = w.tick(1, "loop").unwrap_err();
        assert!(matches!(err, SimError::WatchdogExpired { budget: 10, .. }));
    }

    #[test]
    fn check_total_is_stateless() {
        let w = Watchdog::with_budget(100);
        w.check_total(100, "analytic").unwrap();
        assert!(w.check_total(101, "analytic").is_err());
        // Checking twice never accumulates.
        w.check_total(100, "analytic").unwrap();
    }

    #[test]
    fn big_ticks_saturate() {
        let mut w = Watchdog::with_budget(5);
        let err = w.tick(u64::MAX, "burst").unwrap_err();
        assert!(matches!(err, SimError::WatchdogExpired { .. }));
    }

    #[test]
    fn display_messages() {
        let e = SimError::Deadlock {
            cycle: 7,
            detail: "2 rows pending".into(),
        };
        assert!(e.to_string().contains("deadlock at cycle 7"));
        let e = SimError::WatchdogExpired {
            budget: 9,
            detail: "sparse".into(),
        };
        assert!(e.to_string().contains("watchdog expired after 9"));
        let e = SimError::FaultUnrecovered {
            cycle: 3,
            detail: "dma".into(),
        };
        assert!(e.to_string().contains("unrecovered fault"));
        assert!(SimError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn is_std_error() {
        fn takes<E: std::error::Error + Send + Sync>(_: E) {}
        takes(SimError::InvalidConfig("q".into()));
    }
}
