//! A tile-level performance model for DNN-scale GEMMs on weight-stationary
//! arrays (the Gemmini comparison of Figure 16a).
//!
//! Full-layer cycle-stepped simulation is unnecessary: a weight-stationary
//! tile's schedule is exactly determined by its shape, so per-tile cycles
//! compose analytically. The model separates compute, fill/drain, per-tile
//! control overhead, and memory stalls — the Stellar-vs-handwritten
//! utilization gap comes from the per-tile overhead that generated control
//! (start broadcast, regfile priming, global stall conservatism) adds.

use stellar_area::TrafficCounts;

use crate::error::{SimError, Watchdog};
use crate::stats::{SimStats, Utilization};
use crate::trace::{CycleBreakdown, StallClass};

/// Parameters of a weight-stationary GEMM engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GemmParams {
    /// Systolic array rows (= tile K).
    pub array_rows: usize,
    /// Systolic array columns (= tile N).
    pub array_cols: usize,
    /// Scratchpad-to-array bandwidth, elements per cycle.
    pub mem_words_per_cycle: f64,
    /// Fixed control cycles per tile: ~0 for the hand-written Gemmini's
    /// fused loop unroller, tens of cycles for a generated design that
    /// broadcasts start, primes regfiles, and synchronizes the global
    /// stall tree (§VI-B).
    pub tile_overhead_cycles: u64,
    /// Whether fill/drain overlaps with the previous tile's streaming
    /// (hand-tuned double buffering) or serializes.
    pub overlapped_fill: bool,
}

impl GemmParams {
    /// The hand-written Gemmini configuration: 16×16, tightly pipelined.
    pub fn handwritten_gemmini() -> GemmParams {
        GemmParams {
            array_rows: 16,
            array_cols: 16,
            mem_words_per_cycle: 16.0,
            tile_overhead_cycles: 2,
            overlapped_fill: true,
        }
    }

    /// A Stellar-generated equivalent: same array, but with generated
    /// control overhead per tile and conservative (non-overlapped) weight
    /// fills driven by the global stall signals.
    pub fn stellar_gemmini() -> GemmParams {
        GemmParams {
            array_rows: 16,
            array_cols: 16,
            mem_words_per_cycle: 16.0,
            tile_overhead_cycles: 10,
            overlapped_fill: false,
        }
    }
}

/// Per-phase cycle breakdown of one GEMM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GemmBreakdown {
    /// Cycles streaming activations through the array.
    pub stream: u64,
    /// Cycles (re)loading stationary weights.
    pub fill: u64,
    /// Per-tile control overhead cycles.
    pub overhead: u64,
    /// Cycles stalled on scratchpad bandwidth.
    pub mem_stall: u64,
}

impl GemmBreakdown {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.stream + self.fill + self.overhead + self.mem_stall
    }

    /// The same attribution in the shared stall taxonomy: streaming is
    /// `Compute`, weight (re)loads are `Fill`, generated control overhead
    /// is `Idle` (the array sits while control broadcasts), scratchpad
    /// stalls are `BankConflict`.
    pub fn stall_classes(&self) -> CycleBreakdown {
        CycleBreakdown::new()
            .with(StallClass::Compute, self.stream)
            .with(StallClass::Fill, self.fill)
            .with(StallClass::Idle, self.overhead)
            .with(StallClass::BankConflict, self.mem_stall)
    }
}

/// Cycles for an `M×K×N` GEMM on the engine, tiled to the array shape.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for a degenerate engine (empty
/// array, non-positive scratchpad bandwidth).
pub fn gemm_cycles(
    m: usize,
    k: usize,
    n: usize,
    p: &GemmParams,
) -> Result<GemmBreakdown, SimError> {
    if p.array_rows == 0 || p.array_cols == 0 {
        return Err(SimError::InvalidConfig(format!(
            "empty array {}x{}",
            p.array_rows, p.array_cols
        )));
    }
    if p.mem_words_per_cycle <= 0.0 || p.mem_words_per_cycle.is_nan() {
        return Err(SimError::InvalidConfig(format!(
            "non-positive scratchpad bandwidth {}",
            p.mem_words_per_cycle
        )));
    }
    let tiles_k = k.div_ceil(p.array_rows).max(1);
    let tiles_n = n.div_ceil(p.array_cols).max(1);
    let num_tiles = (tiles_k * tiles_n) as u64;

    // Each tile streams all M rows through the array.
    let stream_per_tile = m as u64 + (p.array_rows + p.array_cols) as u64;
    let stream = num_tiles * stream_per_tile;

    // Weight fill: one array-load per tile; overlapped designs hide all but
    // the first.
    let fill_per_tile = p.array_rows as u64;
    let fill = if p.overlapped_fill {
        fill_per_tile // only the first tile's fill is exposed
    } else {
        num_tiles * fill_per_tile
    };

    let overhead = num_tiles * p.tile_overhead_cycles;

    // Memory: per tile we move M×K_t activations and M×N_t outputs.
    let words = (m * k + m * n + k * n) as f64;
    let mem_cycles = (words / p.mem_words_per_cycle).ceil() as u64;
    let mem_stall = mem_cycles.saturating_sub(stream); // only the exposed part

    Ok(GemmBreakdown {
        stream,
        fill,
        overhead,
        mem_stall,
    })
}

/// Simulates a GEMM and returns full stats (cycles, utilization, traffic),
/// under the default watchdog budget.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for a degenerate engine and
/// [`SimError::WatchdogExpired`] if the layer needs more cycles than the
/// budget ([`layer_utilization_budgeted`] picks the budget).
pub fn layer_utilization(
    m: usize,
    k: usize,
    n: usize,
    p: &GemmParams,
) -> Result<SimStats, SimError> {
    layer_utilization_budgeted(m, k, n, p, &Watchdog::default_budget())
}

/// [`layer_utilization`] with an explicit cycle budget.
pub fn layer_utilization_budgeted(
    m: usize,
    k: usize,
    n: usize,
    p: &GemmParams,
    watchdog: &Watchdog,
) -> Result<SimStats, SimError> {
    let b = gemm_cycles(m, k, n, p)?;
    let cycles = b.total();
    watchdog.check_total(cycles, "gemm layer")?;
    let breakdown = b.stall_classes();
    breakdown.debug_assert_accounts_for(cycles, "gemm layer");
    let pes = (p.array_rows * p.array_cols) as u64;
    let macs = (m * k * n) as u64;
    Ok(SimStats {
        cycles,
        utilization: Utilization {
            busy: macs, // one MAC per PE-cycle of useful work
            total: cycles * pes,
        },
        traffic: TrafficCounts {
            macs,
            sram_accesses: (m * k + k * n + 2 * m * n) as u64,
            regfile_accesses: 2 * macs,
            dram_words: (m * k + k * n + m * n) as u64,
            pe_cycles: cycles * pes,
        },
        breakdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_square_gemm_high_utilization() {
        let p = GemmParams::handwritten_gemmini();
        let s = layer_utilization(1024, 1024, 1024, &p).unwrap();
        assert!(
            s.utilization.fraction() > 0.85,
            "handwritten utilization {:.3} too low",
            s.utilization.fraction()
        );
    }

    #[test]
    fn stellar_util_is_somewhat_lower() {
        // Figure 16a: the Stellar-generated Gemmini reaches ~90% of the
        // hand-written design's utilization.
        let hand = layer_utilization(512, 512, 512, &GemmParams::handwritten_gemmini()).unwrap();
        let stellar = layer_utilization(512, 512, 512, &GemmParams::stellar_gemmini()).unwrap();
        let ratio = stellar.utilization.fraction() / hand.utilization.fraction();
        assert!(
            (0.80..1.0).contains(&ratio),
            "stellar/handwritten utilization ratio {ratio:.3} out of band"
        );
    }

    #[test]
    fn small_gemms_waste_the_array() {
        let p = GemmParams::handwritten_gemmini();
        let small = layer_utilization(8, 8, 8, &p).unwrap();
        let big = layer_utilization(512, 512, 512, &p).unwrap();
        assert!(small.utilization.fraction() < big.utilization.fraction());
    }

    #[test]
    fn breakdown_sums() {
        let b = gemm_cycles(256, 64, 64, &GemmParams::stellar_gemmini()).unwrap();
        assert_eq!(b.total(), b.stream + b.fill + b.overhead + b.mem_stall);
        assert!(b.overhead > 0);
        assert!(b.fill > GemmParams::stellar_gemmini().array_rows as u64);
        // The shared-taxonomy view sums to the same total and carries the
        // same attribution.
        let shared = b.stall_classes();
        assert_eq!(shared.total(), b.total());
        assert_eq!(shared.get(StallClass::Compute), b.stream);
        assert_eq!(shared.get(StallClass::Fill), b.fill);
        let s = layer_utilization(256, 64, 64, &GemmParams::stellar_gemmini()).unwrap();
        assert_eq!(s.breakdown.total(), s.cycles);
    }

    #[test]
    fn bandwidth_starvation_stalls() {
        let mut p = GemmParams::handwritten_gemmini();
        p.mem_words_per_cycle = 0.25;
        let starved = gemm_cycles(128, 128, 128, &p).unwrap();
        assert!(starved.mem_stall > 0, "expected memory stalls at 0.25 w/c");
        let fast = gemm_cycles(128, 128, 128, &GemmParams::handwritten_gemmini()).unwrap();
        assert_eq!(fast.mem_stall, 0);
    }

    #[test]
    fn degenerate_engines_are_invalid_config() {
        let mut p = GemmParams::handwritten_gemmini();
        p.array_rows = 0;
        assert!(matches!(
            gemm_cycles(8, 8, 8, &p),
            Err(SimError::InvalidConfig(_))
        ));
        let mut p = GemmParams::handwritten_gemmini();
        p.mem_words_per_cycle = 0.0;
        assert!(matches!(
            layer_utilization(8, 8, 8, &p),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn layer_respects_watchdog_budget() {
        let p = GemmParams::handwritten_gemmini();
        let need = layer_utilization(128, 128, 128, &p).unwrap().cycles;
        let err = layer_utilization_budgeted(128, 128, 128, &p, &Watchdog::with_budget(need - 1))
            .unwrap_err();
        assert!(matches!(err, SimError::WatchdogExpired { .. }));
    }

    #[test]
    fn macs_counted_exactly() {
        let s = layer_utilization(10, 20, 30, &GemmParams::handwritten_gemmini()).unwrap();
        assert_eq!(s.traffic.macs, 10 * 20 * 30);
    }
}
