//! The shared event-driven simulation engine: a monotonic event queue plus
//! a skip-ahead clock.
//!
//! The cycle-stepped models in this crate originally advanced time one
//! cycle at a time, scanning every lane on every tick even across long
//! stretches where no state could possibly change. This module provides
//! the alternative the fast analytical modelers (Sparseloop, TeAAL) use:
//! simulated time jumps directly from one *event* (a lane completing a
//! row, a DMA response arriving) to the next, and the cycles in between
//! are attributed to a [`StallClass`] in one arithmetic step instead of
//! one loop iteration per cycle.
//!
//! Two invariants make the engine a drop-in replacement for the ticked
//! loops it replaces:
//!
//! * **Monotonic time.** [`Engine::advance`] only moves forward, the
//!   [`Watchdog`] is ticked by exactly the cycles skipped (so budget
//!   exhaustion fires under the same budgets as a per-cycle loop), and
//!   every advanced cycle is attributed to exactly one stall class, so
//!   the [`CycleBreakdown`] sums to the final cycle count — the same
//!   accounting invariant the ticked loops maintain.
//! * **Deterministic ordering.** Events at equal timestamps pop in the
//!   order they were scheduled (FIFO tie-break via a monotone sequence
//!   number), which keeps lane iteration order — and therefore RNG draw
//!   order under fault injection — identical to the per-cycle reference.
//!
//! The queue is a preallocated sorted ring (see [`EventQueue`]):
//! scheduling and popping inside a simulation loop performs no heap
//! allocation as long as the number of in-flight events stays within the
//! initial capacity (models size it to their lane count up front).

// The engine sits under every simulation loop: unwinding is denied in
// non-test code here.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable
    )
)]

use crate::error::{SimError, Watchdog};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::trace::{CycleBreakdown, StallClass};

/// Introspection counters for one engine run, tracked allocation-free
/// alongside the hot loop (plain integer adds per schedule/pop, a
/// fixed-array histogram bucket increment per skip): how the event queue
/// behaved (depth, compactions) and how far each skip-ahead jumped. All
/// values derive from *simulated* time and queue activity, so they are
/// deterministic for a fixed workload — safe to publish next to
/// byte-compared metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Events ever scheduled.
    pub events_scheduled: u64,
    /// Events popped (consumed by the model).
    pub events_popped: u64,
    /// High-water mark of pending events.
    pub max_pending: u64,
    /// Times the queue compacted its consumed prefix.
    pub compactions: u64,
    /// Distribution of skip-ahead jump lengths in cycles (one observation
    /// per [`Engine::advance_to_next_event`] that moved time or not).
    pub jump_cycles: Histogram,
}

impl EngineStats {
    /// Publishes the stats into a [`MetricsRegistry`] under
    /// `engine_*{labels}` metrics: `engine_events{kind=scheduled|popped}`
    /// and `engine_compactions` counters, an `engine_max_pending` gauge,
    /// and the `engine_jump_cycles` histogram (with p50/p95/p99 in the
    /// JSON export).
    pub fn record(&self, registry: &mut MetricsRegistry, labels: &[(&str, &str)]) {
        let mut scheduled = labels.to_vec();
        scheduled.push(("kind", "scheduled"));
        registry.counter_add("engine_events", &scheduled, self.events_scheduled);
        let mut popped = labels.to_vec();
        popped.push(("kind", "popped"));
        registry.counter_add("engine_events", &popped, self.events_popped);
        registry.counter_add("engine_compactions", labels, self.compactions);
        registry.gauge_set("engine_max_pending", labels, self.max_pending as f64);
        // Bucket-exact merge of the whole jump histogram (not a replay
        // of observations, which would lose the original buckets).
        registry.observe_histogram("engine_jump_cycles", labels, &self.jump_cycles);
    }
}

/// One scheduled completion/arrival, as seen by a model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Absolute cycle at which the event fires.
    pub time: u64,
    /// Model-defined payload (typically a lane index).
    pub key: u32,
}

/// A queue entry; `seq` breaks ties among same-cycle events FIFO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct QueueEntry {
    time: u64,
    seq: u64,
    key: u32,
}

/// A monotonic event queue with FIFO ordering among same-cycle events.
///
/// The in-flight set of the models built on this queue is bounded by the
/// lane/slot count (a handful of entries), so the store is a small `Vec`
/// kept sorted ascending by `(time, seq)` behind a consumed-prefix
/// cursor. A model scheduling a completion later than everything pending
/// — the overwhelmingly common case in a skip-ahead loop — appends
/// without shifting anything; popping the earliest event just advances
/// the cursor, compacting the consumed prefix away once it outgrows the
/// live tail. At these sizes both operations beat a binary heap's sift,
/// which is what keeps the hot loops allocation- and
/// pointer-chase-free.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    /// Pending events from `start` on, sorted ascending by `(time, seq)`;
    /// `[..start]` is already consumed.
    sorted: Vec<QueueEntry>,
    start: usize,
    seq: u64,
    /// Introspection counters (plain adds on the hot path): events
    /// popped, the pending-depth high-water mark, and compaction count.
    /// `seq` doubles as the scheduled count.
    popped: u64,
    max_pending: u64,
    compactions: u64,
}

impl EventQueue {
    /// An empty queue that can hold `capacity` in-flight events without
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> EventQueue {
        EventQueue {
            sorted: Vec::with_capacity(capacity),
            start: 0,
            seq: 0,
            popped: 0,
            max_pending: 0,
            compactions: 0,
        }
    }

    /// Schedules `key` to fire at absolute cycle `time`.
    #[inline]
    pub fn schedule(&mut self, time: u64, key: u32) {
        let entry = QueueEntry {
            time,
            seq: self.seq,
            key,
        };
        self.seq += 1;
        // Walk back from the end; a same-time pending event has a smaller
        // seq and therefore stays in front of the new one (FIFO).
        let mut pos = self.sorted.len();
        while pos > self.start {
            let e = self.sorted[pos - 1];
            if (e.time, e.seq) > (time, entry.seq) {
                pos -= 1;
            } else {
                break;
            }
        }
        self.sorted.insert(pos, entry);
        self.max_pending = self
            .max_pending
            .max((self.sorted.len() - self.start) as u64);
    }

    /// The firing time of the earliest pending event.
    #[inline]
    pub fn next_time(&self) -> Option<u64> {
        self.sorted.get(self.start).map(|e| e.time)
    }

    /// Pops the earliest pending event (FIFO among equal times).
    #[inline]
    pub fn pop(&mut self) -> Option<Event> {
        let e = *self.sorted.get(self.start)?;
        self.start += 1;
        self.popped += 1;
        if self.start >= self.sorted.len() {
            self.sorted.clear();
            self.start = 0;
        } else if self.start >= 16 && self.start * 2 >= self.sorted.len() {
            // Amortized compaction bounds the buffer at twice the live
            // tail without shifting on every pop.
            self.sorted.drain(..self.start);
            self.start = 0;
            self.compactions += 1;
        }
        Some(Event {
            time: e.time,
            key: e.key,
        })
    }

    /// Pops the earliest event only if it fires at or before `now`.
    #[inline]
    pub fn pop_due(&mut self, now: u64) -> Option<Event> {
        if self.next_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len() - self.start
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.sorted.len()
    }

    /// Events ever scheduled into this queue.
    pub fn scheduled(&self) -> u64 {
        self.seq
    }

    /// Events popped from this queue.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// High-water mark of pending events.
    pub fn max_pending(&self) -> u64 {
        self.max_pending
    }

    /// Times the consumed prefix was compacted away.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }
}

/// The skip-ahead simulation clock: current time, the event queue, the
/// watchdog budget, and the cycle-attribution ledger, advanced together
/// so the `sum(breakdown) == cycles` invariant can never be violated by a
/// model that only moves time through the engine.
#[derive(Clone, Debug)]
pub struct Engine {
    now: u64,
    watchdog: Watchdog,
    breakdown: CycleBreakdown,
    queue: EventQueue,
    /// Skip-ahead jump lengths (cycles per fused pop-and-advance).
    jump_cycles: Histogram,
}

impl Engine {
    /// An engine at cycle 0 under the given watchdog budget.
    pub fn new(watchdog: Watchdog) -> Engine {
        Engine::with_capacity(watchdog, 0)
    }

    /// [`Engine::new`] with an event queue preallocated for `capacity`
    /// in-flight events (size it to the lane count to keep the stepped
    /// loop allocation-free).
    pub fn with_capacity(watchdog: Watchdog, capacity: usize) -> Engine {
        Engine {
            now: 0,
            watchdog,
            breakdown: CycleBreakdown::new(),
            queue: EventQueue::with_capacity(capacity),
            jump_cycles: Histogram::default(),
        }
    }

    /// The current simulated cycle.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The cycles attributed so far (always sums to [`Engine::now`] when
    /// time only moves through [`Engine::advance`]/[`Engine::advance_to`]).
    pub fn breakdown(&self) -> &CycleBreakdown {
        &self.breakdown
    }

    /// Consumes the engine, returning the attribution ledger.
    pub fn into_breakdown(self) -> CycleBreakdown {
        self.breakdown
    }

    /// The watchdog state (elapsed == attributed cycles).
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// Schedules `key` to fire `delta` cycles from now.
    #[inline]
    pub fn schedule_in(&mut self, delta: u64, key: u32) {
        self.queue.schedule(self.now.saturating_add(delta), key);
    }

    /// Schedules `key` at an absolute cycle (clamped to the present —
    /// events cannot fire in the past).
    #[inline]
    pub fn schedule_at(&mut self, time: u64, key: u32) {
        self.queue.schedule(time.max(self.now), key);
    }

    /// The firing time of the earliest pending event.
    #[inline]
    pub fn next_event_time(&self) -> Option<u64> {
        self.queue.next_time()
    }

    /// Pops the earliest event that has already fired (`time <= now`).
    #[inline]
    pub fn pop_due(&mut self) -> Option<Event> {
        self.queue.pop_due(self.now)
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// A snapshot of the engine's introspection counters: queue activity
    /// plus the skip-ahead jump-length distribution. Deterministic for a
    /// fixed workload (simulated time only, no wall clock).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            events_scheduled: self.queue.scheduled(),
            events_popped: self.queue.popped(),
            max_pending: self.queue.max_pending(),
            compactions: self.queue.compactions(),
            jump_cycles: self.jump_cycles,
        }
    }

    /// Skips the clock forward by `delta` cycles, attributing every one
    /// of them to `class` and charging the watchdog — one arithmetic step
    /// standing in for `delta` iterations of a ticked loop.
    ///
    /// # Errors
    ///
    /// [`SimError::WatchdogExpired`] when the cumulative advanced cycles
    /// exceed the budget, exactly as `delta` single-cycle ticks would.
    #[inline]
    pub fn advance(&mut self, delta: u64, class: StallClass, what: &str) -> Result<(), SimError> {
        self.watchdog.tick(delta, what)?;
        self.breakdown.add(class, delta);
        self.now = self.now.saturating_add(delta);
        Ok(())
    }

    /// [`Engine::advance`] to an absolute cycle (no-op when `time` is in
    /// the past). Returns the cycles actually skipped.
    ///
    /// # Errors
    ///
    /// [`SimError::WatchdogExpired`] past the budget.
    pub fn advance_to(
        &mut self,
        time: u64,
        class: StallClass,
        what: &str,
    ) -> Result<u64, SimError> {
        let delta = time.saturating_sub(self.now);
        self.advance(delta, class, what)?;
        Ok(delta)
    }

    /// Pops the earliest pending event after skipping the clock ahead to
    /// its firing time, attributing the gap to `class` — the fused form
    /// of [`Engine::next_event_time`] + [`Engine::advance_to`] +
    /// [`Engine::pop_due`] that hot loops use (one queue pop instead of
    /// three peeks). Returns `None`, without moving time, when the queue
    /// is empty. Same-cycle followers are then due via
    /// [`Engine::pop_due`].
    ///
    /// # Errors
    ///
    /// [`SimError::WatchdogExpired`] past the budget.
    #[inline]
    pub fn advance_to_next_event(
        &mut self,
        class: StallClass,
        what: &str,
    ) -> Result<Option<Event>, SimError> {
        match self.queue.pop() {
            None => Ok(None),
            Some(ev) => {
                let skipped = self.advance_to(ev.time, class, what)?;
                self.jump_cycles.observe(skipped as f64);
                Ok(Some(ev))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::with_capacity(4);
        q.schedule(30, 0);
        q.schedule(10, 1);
        q.schedule(20, 2);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::with_capacity(8);
        for key in 0..6u32 {
            q.schedule(5, key);
        }
        let keys: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::with_capacity(2);
        q.schedule(10, 7);
        assert_eq!(q.pop_due(9), None);
        assert_eq!(q.pop_due(10), Some(Event { time: 10, key: 7 }));
        assert!(q.is_empty());
    }

    #[test]
    fn advance_attributes_and_ticks() {
        let mut e = Engine::new(Watchdog::with_budget(100));
        e.advance(30, StallClass::Compute, "test").unwrap();
        e.advance(12, StallClass::LoadImbalance, "test").unwrap();
        assert_eq!(e.now(), 42);
        assert_eq!(e.breakdown().total(), 42);
        assert_eq!(e.breakdown().get(StallClass::Compute), 30);
        assert_eq!(e.watchdog().elapsed(), 42);
    }

    #[test]
    fn advance_to_skips_exactly_to_the_event() {
        let mut e = Engine::with_capacity(Watchdog::with_budget(1000), 4);
        e.schedule_in(25, 3);
        let next = e.next_event_time().unwrap();
        let skipped = e.advance_to(next, StallClass::Compute, "test").unwrap();
        assert_eq!((skipped, e.now()), (25, 25));
        assert_eq!(e.pop_due(), Some(Event { time: 25, key: 3 }));
        assert_eq!(e.pop_due(), None);
        // Advancing to the past is a no-op, not a panic.
        assert_eq!(e.advance_to(3, StallClass::Idle, "test").unwrap(), 0);
        assert_eq!(e.now(), 25);
    }

    #[test]
    fn watchdog_fires_at_the_same_threshold_as_ticking() {
        // A skip of d cycles must exhaust the budget exactly when d ticks
        // of 1 would.
        let mut ticked = Watchdog::with_budget(10);
        let mut tick_err = None;
        for _ in 0..12 {
            if let Err(e) = ticked.tick(1, "loop") {
                tick_err = Some(e);
                break;
            }
        }
        let mut skipped = Engine::new(Watchdog::with_budget(10));
        let skip_err = skipped
            .advance(12, StallClass::Compute, "loop")
            .unwrap_err();
        assert_eq!(tick_err, Some(skip_err));
    }

    #[test]
    fn stats_count_queue_activity_and_jumps() {
        let mut e = Engine::with_capacity(Watchdog::with_budget(10_000), 4);
        e.schedule_in(10, 0);
        e.schedule_in(25, 1);
        let first = e
            .advance_to_next_event(StallClass::Compute, "test")
            .unwrap()
            .unwrap();
        assert_eq!(first.time, 10);
        let second = e
            .advance_to_next_event(StallClass::Compute, "test")
            .unwrap()
            .unwrap();
        assert_eq!(second.time, 25);
        let s = e.stats();
        assert_eq!(s.events_scheduled, 2);
        assert_eq!(s.events_popped, 2);
        assert_eq!(s.max_pending, 2);
        assert_eq!(s.jump_cycles.count, 2);
        // Jumps of 10 then 15 cycles.
        assert_eq!(s.jump_cycles.min, 10.0);
        assert_eq!(s.jump_cycles.max, 15.0);
        assert_eq!(s.jump_cycles.sum, 25.0);
    }

    #[test]
    fn stats_are_deterministic_across_identical_runs() {
        let run = || {
            let mut e = Engine::with_capacity(Watchdog::with_budget(100_000), 8);
            for i in 0..200u32 {
                e.schedule_in(u64::from(i % 17) + 1, i);
                if i % 3 == 0 {
                    let _ = e.advance_to_next_event(StallClass::Compute, "test");
                }
            }
            while let Ok(Some(_)) = e.advance_to_next_event(StallClass::Idle, "test") {}
            e.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queue_compaction_is_counted() {
        let mut q = EventQueue::with_capacity(4);
        // Interleave schedules and pops so a long consumed prefix builds
        // up in front of a live tail, forcing the drain branch.
        for i in 0..200u32 {
            q.schedule(u64::from(i), i);
            q.schedule(u64::from(i) + 1000, i);
            let _ = q.pop();
        }
        assert!(q.compactions() > 0, "compaction never triggered");
        assert_eq!(q.scheduled(), 400);
        assert_eq!(q.popped(), 200);
        assert!(q.max_pending() >= q.len() as u64);
    }

    #[test]
    fn stats_record_into_a_registry_without_nulls() {
        let mut e = Engine::with_capacity(Watchdog::with_budget(1000), 2);
        e.schedule_in(5, 0);
        let _ = e.advance_to_next_event(StallClass::Compute, "test");
        let mut r = MetricsRegistry::new();
        e.stats().record(&mut r, &[("model", "test")]);
        assert_eq!(
            r.counter("engine_events", &[("model", "test"), ("kind", "scheduled")]),
            1
        );
        assert_eq!(
            r.counter("engine_events", &[("model", "test"), ("kind", "popped")]),
            1
        );
        let json = r.to_json();
        assert!(json.contains("engine_jump_cycles"));
        assert!(!json.contains("null"), "engine metrics leaked null: {json}");
    }

    #[test]
    fn breakdown_always_sums_to_now() {
        let mut e = Engine::new(Watchdog::default_budget());
        for (i, class) in StallClass::ALL.iter().enumerate() {
            e.advance(i as u64, *class, "test").unwrap();
        }
        assert_eq!(e.breakdown().total(), e.now());
        e.breakdown().debug_assert_accounts_for(e.now(), "engine");
    }
}
