//! Shared simulation counters.

use stellar_area::TrafficCounts;

use crate::trace::CycleBreakdown;

/// PE occupancy accounting: busy PE-cycles over total PE-cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Utilization {
    /// PE-cycles doing useful arithmetic.
    pub busy: u64,
    /// Total PE-cycles elapsed (PEs × cycles).
    pub total: u64,
}

impl Utilization {
    /// The utilization fraction in `[0, 1]` (0 when nothing elapsed).
    ///
    /// The ratio is clamped to 1.0: `busy > total` can only arise from a
    /// model accounting bug or saturated [`merge`](Utilization::merge)
    /// counters, and a >100% occupancy must never leak into reports or
    /// JSON exports that document the `[0, 1]` contract.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.busy as f64 / self.total as f64).min(1.0)
        }
    }

    /// Merges two measurements, saturating instead of wrapping on
    /// overflow (long compositions of huge layers must degrade, not
    /// wrap around into nonsense utilizations).
    pub fn merge(self, o: Utilization) -> Utilization {
        Utilization {
            busy: self.busy.saturating_add(o.busy),
            total: self.total.saturating_add(o.total),
        }
    }
}

/// The result of one simulation: cycles, utilization, traffic for the
/// energy model, and a per-class cycle attribution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Cycles elapsed.
    pub cycles: u64,
    /// PE occupancy.
    pub utilization: Utilization,
    /// Counted events, consumable by [`stellar_area::energy_per_mac_pj`].
    pub traffic: TrafficCounts,
    /// Where every cycle went — categories sum to `cycles` for all
    /// `simulate_*` entry points (debug-asserted at construction).
    pub breakdown: CycleBreakdown,
}

impl SimStats {
    /// Sequential composition: cycles add (saturating), occupancy,
    /// traffic, and breakdown merge.
    pub fn then(self, o: SimStats) -> SimStats {
        SimStats {
            cycles: self.cycles.saturating_add(o.cycles),
            utilization: self.utilization.merge(o.utilization),
            traffic: self.traffic.merge(o.traffic),
            breakdown: self.breakdown.merge(o.breakdown),
        }
    }

    /// Throughput in operations per cycle given an op count.
    pub fn ops_per_cycle(&self, ops: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            ops as f64 / self.cycles as f64
        }
    }

    /// PE utilization in `[0, 1]` — the symmetric companion of
    /// [`SimStats::ops_per_cycle`], so callers stop reaching through
    /// `stats.utilization.fraction()`.
    pub fn utilization_fraction(&self) -> f64 {
        self.utilization.fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StallClass;

    #[test]
    fn utilization_fraction() {
        let u = Utilization {
            busy: 75,
            total: 100,
        };
        assert!((u.fraction() - 0.75).abs() < 1e-12);
        assert_eq!(Utilization::default().fraction(), 0.0);
    }

    #[test]
    fn fraction_is_clamped_to_one() {
        // busy > total (an accounting bug or saturated merge counters)
        // must clamp to exactly 1.0, honouring the documented [0, 1]
        // contract, not report a >100% occupancy.
        let over = Utilization {
            busy: 150,
            total: 100,
        };
        assert_eq!(over.fraction(), 1.0);
        let saturated = Utilization {
            busy: u64::MAX,
            total: u64::MAX - 1,
        };
        assert_eq!(saturated.fraction(), 1.0);
        let exact = Utilization {
            busy: 100,
            total: 100,
        };
        assert_eq!(exact.fraction(), 1.0);
    }

    #[test]
    fn merge_and_then() {
        let a = SimStats {
            cycles: 10,
            utilization: Utilization { busy: 5, total: 10 },
            traffic: TrafficCounts {
                macs: 100,
                ..TrafficCounts::default()
            },
            breakdown: CycleBreakdown::new().with(StallClass::Compute, 10),
        };
        let b = a;
        let c = a.then(b);
        assert_eq!(c.cycles, 20);
        assert_eq!(c.utilization.busy, 10);
        assert_eq!(c.traffic.macs, 200);
        assert_eq!(c.breakdown.get(StallClass::Compute), 20);
        assert_eq!(c.breakdown.total(), c.cycles);
        assert!((c.ops_per_cycle(200) - 10.0).abs() < 1e-12);
        assert!((c.utilization_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_stats_pin_finite_fractions() {
        // A simulation that never advanced (empty workload) must report
        // 0.0 everywhere — never NaN or Inf — so exported metrics stay
        // valid JSON numbers without special-casing downstream.
        let s = SimStats::default();
        for v in [
            s.utilization_fraction(),
            s.utilization.fraction(),
            s.ops_per_cycle(0),
            s.ops_per_cycle(100),
        ] {
            assert_eq!(v, 0.0);
            assert!(v.is_finite());
        }
        // busy > 0 with total == 0 cannot happen in a real run, but the
        // guard must still hold (total is the divisor).
        let degenerate = Utilization { busy: 5, total: 0 };
        assert_eq!(degenerate.fraction(), 0.0);
    }

    #[test]
    fn then_saturates_instead_of_wrapping() {
        let big = SimStats {
            cycles: u64::MAX - 1,
            utilization: Utilization {
                busy: u64::MAX - 1,
                total: u64::MAX - 1,
            },
            ..SimStats::default()
        };
        let c = big.then(big);
        assert_eq!(c.cycles, u64::MAX);
        assert_eq!(c.utilization.busy, u64::MAX);
        assert_eq!(c.utilization.total, u64::MAX);
    }
}
