//! Shared simulation counters.

use stellar_area::TrafficCounts;

/// PE occupancy accounting: busy PE-cycles over total PE-cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Utilization {
    /// PE-cycles doing useful arithmetic.
    pub busy: u64,
    /// Total PE-cycles elapsed (PEs × cycles).
    pub total: u64,
}

impl Utilization {
    /// The utilization fraction in `[0, 1]` (0 when nothing elapsed).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.busy as f64 / self.total as f64
        }
    }

    /// Merges two measurements.
    pub fn merge(self, o: Utilization) -> Utilization {
        Utilization {
            busy: self.busy + o.busy,
            total: self.total + o.total,
        }
    }
}

/// The result of one simulation: cycles, utilization, and traffic for the
/// energy model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Cycles elapsed.
    pub cycles: u64,
    /// PE occupancy.
    pub utilization: Utilization,
    /// Counted events, consumable by [`stellar_area::energy_per_mac_pj`].
    pub traffic: TrafficCounts,
}

impl SimStats {
    /// Sequential composition: cycles add, occupancy and traffic merge.
    pub fn then(self, o: SimStats) -> SimStats {
        SimStats {
            cycles: self.cycles + o.cycles,
            utilization: self.utilization.merge(o.utilization),
            traffic: self.traffic.merge(o.traffic),
        }
    }

    /// Throughput in operations per cycle given an op count.
    pub fn ops_per_cycle(&self, ops: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            ops as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_fraction() {
        let u = Utilization {
            busy: 75,
            total: 100,
        };
        assert!((u.fraction() - 0.75).abs() < 1e-12);
        assert_eq!(Utilization::default().fraction(), 0.0);
    }

    #[test]
    fn merge_and_then() {
        let a = SimStats {
            cycles: 10,
            utilization: Utilization { busy: 5, total: 10 },
            traffic: TrafficCounts {
                macs: 100,
                ..TrafficCounts::default()
            },
        };
        let b = a;
        let c = a.then(b);
        assert_eq!(c.cycles, 20);
        assert_eq!(c.utilization.busy, 10);
        assert_eq!(c.traffic.macs, 200);
        assert!((c.ops_per_cycle(200) - 10.0).abs() < 1e-12);
    }
}
