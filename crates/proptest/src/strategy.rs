//! The `Strategy` trait and the combinators the workspace's tests use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of test values. The shim generates uniformly at random (no
/// shrinking); determinism comes from the seeded [`TestRng`].
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

/// Object-safe indirection for [`Strategy`].
pub trait DynStrategy<T> {
    /// Generates one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate_dyn(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of `proptest::sample::select`.
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    pub(crate) values: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.below(self.values.len() as u64) as usize].clone()
    }
}

/// A weighted union of boxed strategies (the result of `prop_oneof!`).
pub struct Union<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(
            choices.iter().any(|(w, _)| *w > 0),
            "prop_oneof! requires a positive total weight"
        );
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.choices.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.choices {
            if pick < *w as u64 {
                return s.generate_dyn(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total")
    }
}

/// Any `u64` (`proptest::num::u64::ANY`).
#[derive(Clone, Copy, Debug)]
pub struct AnyU64;

impl Strategy for AnyU64 {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Any `u32` (`proptest::num::u32::ANY`).
#[derive(Clone, Copy, Debug)]
pub struct AnyU32;

impl Strategy for AnyU32 {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

/// Any `bool` (`proptest::bool::ANY`).
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// The size argument of `collection::vec`: a fixed length or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    pub(crate) min: usize,
    /// Exclusive upper bound.
    pub(crate) max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// The result of `collection::vec`.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min).max(1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
