//! The deterministic case runner behind the `proptest!` macro.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real proptest defaults to 256; 64 keeps offline CI fast while
        // still exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (carried by `prop_assert*`).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A SplitMix64 generator, seeded deterministically from the test name so
/// every run of a property replays the identical case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `name` (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is < 2^-53 for the
        // small bounds tests use, which is irrelevant here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_stream() {
        // SplitMix64 with seed 0 must match the published reference values.
        let mut r = TestRng { state: 0 };
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::deterministic("below");
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = TestRng::deterministic("unit");
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
