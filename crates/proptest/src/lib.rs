//! A small, dependency-free, fully offline stand-in for the `proptest`
//! crate, implementing the subset of its API that this workspace uses.
//!
//! The container this repository builds in has no access to crates.io, so
//! the real `proptest` cannot be vendored. This shim keeps the property
//! tests source-compatible: `proptest!` blocks, range/tuple/`Just`/
//! `select`/`prop_oneof!`/`collection::vec` strategies, and the
//! `prop_assert*` macros all work, driven by a deterministic SplitMix64
//! generator so every run of every test is exactly reproducible.

pub mod strategy;
pub mod test_runner;

/// Integer/boolean "any value" strategies (`proptest::num::u64::ANY`, ...).
pub mod num {
    /// `u64` strategies.
    pub mod u64 {
        /// Any `u64`, uniform over the full range.
        pub const ANY: crate::strategy::AnyU64 = crate::strategy::AnyU64;
    }
    /// `u32` strategies.
    pub mod u32 {
        /// Any `u32`, uniform over the full range.
        pub const ANY: crate::strategy::AnyU32 = crate::strategy::AnyU32;
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    /// Either boolean with equal probability.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size` (a fixed length or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use crate::strategy::Select;

    /// A strategy choosing uniformly from the given values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select() requires at least one value");
        Select { values }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines a block of property tests.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header, then test
/// functions whose arguments are `pattern in strategy` pairs. Each test
/// runs its body for every generated case and panics (failing the test) on
/// the first case whose `prop_assert*` fails.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property '{}' failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: both sides equal {:?}", a);
    }};
}

/// A weighted or unweighted union of strategies producing a common value
/// type (`prop_oneof![Just(a), Just(b)]` or `prop_oneof![3 => s1, 1 => s2]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn select_and_oneof_cover_choices() {
        let mut rng = TestRng::deterministic("select");
        let s = crate::sample::select(vec![1u8, 2, 3]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
        let u = prop_oneof![4 => Just(0.0f64), 1 => (1i8..=2).prop_map(|v| v as f64)];
        let vals: Vec<f64> = (0..200).map(|_| u.generate(&mut rng)).collect();
        assert!(vals.contains(&0.0));
        assert!(vals.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn determinism_per_test_name() {
        let run = || {
            let mut rng = TestRng::deterministic("fixed");
            (0..10)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke((a, b) in (0u32..10, 0u32..10), v in crate::collection::vec(0i8..4, 0..6)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 6);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
