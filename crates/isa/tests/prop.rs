//! Property tests for the instruction encoding and the host interpreter.

use proptest::prelude::*;
use stellar_isa::{
    disassemble_instruction, Host, Instruction, MemUnit, MetadataType, Opcode, Program, Target,
};
use stellar_tensor::{AxisFormat, DenseMatrix};

fn opcode() -> impl Strategy<Value = Opcode> {
    proptest::sample::select(vec![
        Opcode::SetAddress,
        Opcode::SetSpan,
        Opcode::SetDataStride,
        Opcode::SetMetadataStride,
        Opcode::SetAxisType,
        Opcode::SetConstant,
        Opcode::Issue,
    ])
}

fn target() -> impl Strategy<Value = Target> {
    proptest::sample::select(vec![Target::Src, Target::Dst, Target::Both])
}

fn metadata() -> impl Strategy<Value = Option<MetadataType>> {
    proptest::sample::select(vec![
        None,
        Some(MetadataType::RowId),
        Some(MetadataType::Coord),
    ])
}

fn instruction() -> impl Strategy<Value = Instruction> {
    (
        opcode(),
        target(),
        0u8..=255,
        metadata(),
        proptest::num::u64::ANY,
    )
        .prop_map(|(opcode, target, axis, metadata, rs2)| Instruction {
            opcode,
            target,
            axis,
            metadata,
            // Axis types must carry a valid format code.
            rs2: if opcode == Opcode::SetAxisType {
                rs2 % 4
            } else {
                rs2
            },
        })
}

proptest! {
    /// Encoding is lossless for every well-formed instruction.
    #[test]
    fn encode_decode_round_trip(i in instruction()) {
        let (f, r1, r2) = i.encode();
        prop_assert_eq!(Instruction::decode(f, r1, r2).unwrap(), i);
    }

    /// Every well-formed instruction has a non-empty C rendering ending in
    /// a semicolon.
    #[test]
    fn disassembly_total(i in instruction()) {
        let s = disassemble_instruction(&i);
        prop_assert!(s.ends_with(';'));
        prop_assert!(!s.is_empty());
    }

    /// Unknown opcodes are always rejected, never misdecoded.
    #[test]
    fn bad_opcodes_rejected(funct in 7u8..=255, rs1 in proptest::num::u64::ANY, rs2 in proptest::num::u64::ANY) {
        prop_assert!(Instruction::decode(funct, rs1, rs2).is_err());
    }

    /// A dense DRAM→buffer transfer always reproduces the stored matrix,
    /// for any shape and contents.
    #[test]
    fn dense_transfer_faithful(rows in 1usize..=8, cols in 1usize..=8, seed in 0u64..500) {
        let m = {
            let mut d = DenseMatrix::zeros(rows, cols);
            let mut state = seed;
            for r in 0..rows {
                for c in 0..cols {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    d.set(r, c, ((state >> 40) % 17) as f64 - 8.0);
                }
            }
            d
        };
        let mut host = Host::new();
        let addr = host.dram_store_dense(&m).unwrap();
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("X"));
        p.set_data_addr_src(addr);
        p.set_span(0, cols as u64);
        p.set_span(1, rows as u64);
        p.set_axis_type(0, AxisFormat::Dense);
        p.set_axis_type(1, AxisFormat::Dense);
        p.issue();
        host.run(&p).unwrap();
        prop_assert_eq!(host.buffer_dense("X").unwrap(), m);
    }

    /// CSR transfers reproduce the matrix for arbitrary sparsity.
    #[test]
    fn csr_transfer_faithful(rows in 1usize..=10, cols in 1usize..=10, density in 0.05f64..0.9, seed in 0u64..200) {
        let m = stellar_tensor::gen::uniform(rows, cols, density, seed);
        let mut host = Host::new();
        let (data, row_ids, coords) = host.dram_store_csr(&m).unwrap();
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("B"));
        p.set_data_addr_src(data);
        p.set_metadata_addr_src(0, MetadataType::RowId, row_ids);
        p.set_metadata_addr_src(0, MetadataType::Coord, coords);
        p.set_span(1, rows as u64);
        p.set_span(2, cols as u64);
        p.set_axis_type(0, AxisFormat::Compressed);
        p.set_axis_type(1, AxisFormat::Dense);
        p.issue();
        host.run(&p).unwrap();
        prop_assert_eq!(host.buffer_dense("B").unwrap(), m.to_dense());
    }
}
