//! The RISC-V custom-instruction programming interface of Table II.
//!
//! Stellar-generated accelerators are programmed with a small set of
//! configuration instructions — `set_address`, `set_span`,
//! `set_data_stride`, `set_metadata_stride`, `set_axis_type`,
//! `set_constant` — followed by `issue`, which launches a data movement
//! between two memory units (DRAM, a private memory buffer, or a register
//! file). Spatial arrays begin execution as soon as their input register
//! files fill (§V).
//!
//! This crate provides:
//!
//! * [`Instruction`] with exact 64-bit [`encode`]/[`decode`] round trips
//!   (the `Rs1[19:16]` target / `Rs1[15:0]` axis packing of Table II),
//! * [`Program`], a builder with the same shape as the C snippets of
//!   Listing 7,
//! * [`Host`], an interpreter that executes programs against a DRAM model
//!   and named buffers, moving dense and CSR tensors and accounting DMA
//!   cycles via [`stellar_sim::DmaModel`].
//!
//! [`encode`]: Instruction::encode
//! [`decode`]: Instruction::decode
//!
//! # Examples
//!
//! Moving a dense matrix into `SRAM_A` (the first half of Listing 7):
//!
//! ```
//! use stellar_isa::{Host, MemUnit, Program};
//! use stellar_tensor::{AxisFormat, DenseMatrix};
//!
//! let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let mut host = Host::new();
//! let addr = host.dram_store_dense(&a).unwrap();
//!
//! let mut p = Program::new();
//! p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_A"));
//! p.set_data_addr_src(addr);
//! for axis in 0..2 {
//!     p.set_span(axis, 2);
//!     p.set_axis_type(axis, AxisFormat::Dense);
//! }
//! p.set_data_stride(0, 2);
//! p.set_data_stride(1, 1);
//! p.issue();
//!
//! host.run(&p).unwrap();
//! assert_eq!(host.buffer_dense("SRAM_A").unwrap(), a);
//! ```

mod disasm;
mod encoding;
mod host;
mod program;

pub use disasm::{disassemble, disassemble_instruction};
pub use encoding::{Instruction, IsaError, MetadataType, Opcode, Target};
pub use host::{Host, HostError, TensorPayload};
pub use program::{MemUnit, Program};
