//! The program builder: the C API of Listing 7, producing instruction
//! streams.

use stellar_tensor::AxisFormat;

use crate::encoding::{axis_format_bits, Instruction, MetadataType, Opcode, Target};

/// A memory unit addressable by the ISA.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MemUnit {
    /// Off-chip DRAM (or the shared L2, in a Chipyard SoC).
    Dram,
    /// A named private memory buffer.
    Buffer(String),
    /// A named register file (spatial arrays start when these fill, §V).
    Regfile(String),
}

impl MemUnit {
    /// Shorthand for a named buffer.
    pub fn buffer(name: impl Into<String>) -> MemUnit {
        MemUnit::Buffer(name.into())
    }

    /// Shorthand for a named regfile.
    pub fn regfile(name: impl Into<String>) -> MemUnit {
        MemUnit::Regfile(name.into())
    }
}

/// An instruction stream under construction, with the `set_*`/`issue`
/// methods of Listing 7. The builder also records the src/dst units, which
/// in hardware are routed via `set_address` with regfile/buffer IDs.
#[derive(Clone, Debug, Default)]
pub struct Program {
    instrs: Vec<Instruction>,
    /// The (src, dst) unit pairs established by `set_src_and_dst`, in
    /// order, one per subsequent `issue`.
    routes: Vec<(MemUnit, MemUnit)>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// The encoded instruction stream.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// The src/dst routes, one per issue.
    pub fn routes(&self) -> &[(MemUnit, MemUnit)] {
        &self.routes
    }

    fn push(
        &mut self,
        opcode: Opcode,
        target: Target,
        axis: u8,
        metadata: Option<MetadataType>,
        rs2: u64,
    ) {
        self.instrs.push(Instruction {
            opcode,
            target,
            axis,
            metadata,
            rs2,
        });
    }

    /// `set_src_and_dst(DRAM, SRAM_A)`.
    pub fn set_src_and_dst(&mut self, src: MemUnit, dst: MemUnit) {
        let route_id = self.routes.len() as u64;
        self.routes.push((src, dst));
        self.push(Opcode::SetAddress, Target::Both, 0xFF, None, route_id);
    }

    /// `set_data_addr(FOR_SRC, ptr)`.
    pub fn set_data_addr_src(&mut self, addr: u64) {
        self.push(Opcode::SetAddress, Target::Src, 0, None, addr);
    }

    /// `set_data_addr(FOR_DST, ptr)`.
    pub fn set_data_addr_dst(&mut self, addr: u64) {
        self.push(Opcode::SetAddress, Target::Dst, 0, None, addr);
    }

    /// `set_metadata_addr(FOR_SRC, axis, kind, ptr)`.
    pub fn set_metadata_addr_src(&mut self, axis: u8, kind: MetadataType, addr: u64) {
        self.push(Opcode::SetAddress, Target::Src, axis, Some(kind), addr);
    }

    /// `set_span(FOR_BOTH, axis, n)`.
    pub fn set_span(&mut self, axis: u8, n: u64) {
        self.push(Opcode::SetSpan, Target::Both, axis, None, n);
    }

    /// `set_stride(FOR_BOTH, axis, stride)`.
    pub fn set_data_stride(&mut self, axis: u8, stride: u64) {
        self.push(Opcode::SetDataStride, Target::Both, axis, None, stride);
    }

    /// `set_metadata_stride(FOR_BOTH, axis, kind, stride)`.
    pub fn set_metadata_stride(&mut self, axis: u8, kind: MetadataType, stride: u64) {
        self.push(
            Opcode::SetMetadataStride,
            Target::Both,
            axis,
            Some(kind),
            stride,
        );
    }

    /// `set_axis(FOR_BOTH, axis, DENSE / COMPRESSED / ...)`.
    pub fn set_axis_type(&mut self, axis: u8, format: AxisFormat) {
        self.push(
            Opcode::SetAxisType,
            Target::Both,
            axis,
            None,
            axis_format_bits(format),
        );
    }

    /// `set_constant(id, value)` — e.g. `should_trail_reads`.
    pub fn set_constant(&mut self, id: u8, value: u64) {
        self.push(Opcode::SetConstant, Target::Both, id, None, value);
    }

    /// `stellar_issue()`.
    pub fn issue(&mut self) {
        self.push(Opcode::Issue, Target::Both, 0, None, 0);
    }

    /// Number of issues in the program.
    pub fn num_issues(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| i.opcode == Opcode::Issue)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing7_dense_shape() {
        // The dense half of Listing 7.
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_A"));
        p.set_data_addr_src(0x1000);
        for axis in 0..2 {
            p.set_span(axis, 16);
            p.set_axis_type(axis, AxisFormat::Dense);
        }
        p.set_data_stride(0, 1);
        p.set_data_stride(1, 16);
        p.issue();
        assert_eq!(p.num_issues(), 1);
        assert_eq!(p.instructions().len(), 9);
        assert_eq!(p.routes().len(), 1);
    }

    #[test]
    fn listing7_csr_shape() {
        // The CSR half of Listing 7: metadata addresses for ROW_ID/COORDS.
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_B"));
        p.set_data_addr_src(0x2000);
        p.set_metadata_addr_src(0, MetadataType::RowId, 0x3000);
        p.set_metadata_addr_src(0, MetadataType::Coord, 0x4000);
        p.set_span(0, u64::MAX); // ENTIRE_AXIS
        p.set_span(1, 64);
        p.set_data_stride(0, 1);
        p.set_metadata_stride(0, MetadataType::Coord, 1);
        p.set_metadata_stride(1, MetadataType::RowId, 1);
        p.set_axis_type(0, AxisFormat::Compressed);
        p.set_axis_type(1, AxisFormat::Dense);
        p.issue();
        assert_eq!(p.num_issues(), 1);
        // All instructions encode and decode losslessly.
        for i in p.instructions() {
            let (f, r1, r2) = i.encode();
            assert_eq!(&Instruction::decode(f, r1, r2).unwrap(), i);
        }
    }

    #[test]
    fn multiple_routes() {
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("A"));
        p.issue();
        p.set_src_and_dst(MemUnit::buffer("A"), MemUnit::regfile("rf_A"));
        p.issue();
        assert_eq!(p.routes().len(), 2);
        assert_eq!(p.num_issues(), 2);
    }
}
