//! The host interpreter: executes instruction streams against a DRAM model
//! and named buffers, accounting DMA cycles.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use stellar_sim::DmaModel;
use stellar_tensor::{AxisFormat, CscMatrix, CsrMatrix, DenseMatrix};

use crate::encoding::{axis_format_from_bits, Instruction, MetadataType, Opcode, Target};
use crate::program::{MemUnit, Program};

/// A tensor held by a memory unit after a transfer.
#[derive(Clone, Debug, PartialEq)]
pub enum TensorPayload {
    /// A dense matrix.
    Dense(DenseMatrix),
    /// A CSR matrix.
    Csr(CsrMatrix),
    /// A CSC matrix.
    Csc(CscMatrix),
}

/// Errors from executing a program.
#[derive(Clone, Debug, PartialEq)]
pub enum HostError {
    /// `issue` without a preceding `set_src_and_dst`.
    NoRoute,
    /// The configuration is incomplete or inconsistent for the transfer.
    BadConfig(String),
    /// A DRAM read fell outside the stored region.
    DramOutOfBounds(u64),
    /// The host DRAM bump allocator ran out of words.
    DramExhausted {
        /// Words the allocation would have needed in total.
        needed: u64,
        /// Words of DRAM the host has.
        capacity: u64,
    },
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::NoRoute => write!(f, "issue without set_src_and_dst"),
            HostError::BadConfig(m) => write!(f, "bad transfer configuration: {m}"),
            HostError::DramOutOfBounds(a) => write!(f, "DRAM access out of bounds at {a:#x}"),
            HostError::DramExhausted { needed, capacity } => {
                write!(
                    f,
                    "host DRAM exhausted: need {needed} words, have {capacity}"
                )
            }
        }
    }
}

impl Error for HostError {}

#[derive(Clone, Debug, Default)]
struct TransferConfig {
    route: usize,
    data_addr_src: u64,
    spans: HashMap<u8, u64>,
    axis_types: HashMap<u8, AxisFormat>,
    meta_addrs: HashMap<(u8, MetadataType), u64>,
}

/// The host machine: word-addressable DRAM, named buffers, and a DMA model
/// for cycle accounting.
#[derive(Clone, Debug)]
pub struct Host {
    dram: Vec<u64>,
    buffers: HashMap<String, TensorPayload>,
    dma: DmaModel,
    cycles: u64,
    brk: u64,
}

impl Default for Host {
    fn default() -> Host {
        Host::new()
    }
}

impl Host {
    /// A host with 1 MiW of DRAM and the default single-request DMA.
    pub fn new() -> Host {
        Host {
            dram: vec![0; 1 << 20],
            buffers: HashMap::new(),
            dma: DmaModel::with_slots(1),
            cycles: 0,
            brk: 64,
        }
    }

    /// Replaces the DMA model (e.g. 16 outstanding requests, §VI-C).
    pub fn with_dma(mut self, dma: DmaModel) -> Host {
        self.dma = dma;
        self
    }

    /// Total DMA cycles spent so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Stores a dense matrix row-major in DRAM; returns its word address.
    ///
    /// # Errors
    ///
    /// [`HostError::DramExhausted`] when the matrix does not fit.
    pub fn dram_store_dense(&mut self, m: &DenseMatrix) -> Result<u64, HostError> {
        let addr = self.alloc(m.rows() * m.cols())?;
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                self.dram[addr as usize + r * m.cols() + c] = m.at(r, c).to_bits();
            }
        }
        Ok(addr)
    }

    /// Stores a CSR matrix's three arrays in DRAM; returns
    /// `(data, row_ids, coords)` addresses, as `matrix_B_data`,
    /// `matrix_B_row_ids`, `matrix_B_coords` in Listing 7.
    ///
    /// # Errors
    ///
    /// [`HostError::DramExhausted`] when the arrays do not fit.
    pub fn dram_store_csr(&mut self, m: &CsrMatrix) -> Result<(u64, u64, u64), HostError> {
        let data = self.alloc(m.nnz())?;
        for (n, &v) in m.values().iter().enumerate() {
            self.dram[data as usize + n] = v.to_bits();
        }
        let row_ids = self.alloc(m.rows() + 1)?;
        for (n, &p) in m.row_ptr().iter().enumerate() {
            self.dram[row_ids as usize + n] = p as u64;
        }
        let coords = self.alloc(m.nnz())?;
        for (n, &c) in m.col_idx().iter().enumerate() {
            self.dram[coords as usize + n] = c as u64;
        }
        Ok((data, row_ids, coords))
    }

    /// Stores a CSC matrix's three arrays in DRAM; returns
    /// `(data, col_ptrs, row_coords)` addresses.
    ///
    /// # Errors
    ///
    /// [`HostError::DramExhausted`] when the arrays do not fit.
    pub fn dram_store_csc(&mut self, m: &CscMatrix) -> Result<(u64, u64, u64), HostError> {
        let csr_of_t = m.to_csr().transpose(); // rows of the transpose = columns of m
        let data = self.alloc(m.nnz())?;
        for (n, &v) in csr_of_t.values().iter().enumerate() {
            self.dram[data as usize + n] = v.to_bits();
        }
        let col_ptrs = self.alloc(m.cols() + 1)?;
        for (n, &p) in csr_of_t.row_ptr().iter().enumerate() {
            self.dram[col_ptrs as usize + n] = p as u64;
        }
        let coords = self.alloc(m.nnz())?;
        for (n, &c) in csr_of_t.col_idx().iter().enumerate() {
            self.dram[coords as usize + n] = c as u64;
        }
        Ok((data, col_ptrs, coords))
    }

    fn alloc(&mut self, words: usize) -> Result<u64, HostError> {
        // A simple bump allocator starting past address 0.
        let addr = self.brk;
        let brk = addr.saturating_add(words as u64);
        if brk as usize >= self.dram.len() {
            return Err(HostError::DramExhausted {
                needed: brk,
                capacity: self.dram.len() as u64,
            });
        }
        self.brk = brk;
        Ok(addr)
    }

    /// The payload a buffer last received.
    pub fn buffer(&self, name: &str) -> Option<&TensorPayload> {
        self.buffers.get(name)
    }

    /// The buffer's payload as a dense matrix (CSR payloads are expanded).
    pub fn buffer_dense(&self, name: &str) -> Option<DenseMatrix> {
        match self.buffers.get(name)? {
            TensorPayload::Dense(m) => Some(m.clone()),
            TensorPayload::Csr(m) => Some(m.to_dense()),
            TensorPayload::Csc(m) => Some(m.to_dense()),
        }
    }

    /// Executes a program.
    ///
    /// # Errors
    ///
    /// Returns a [`HostError`] on inconsistent configurations or
    /// out-of-bounds DRAM access.
    pub fn run(&mut self, program: &Program) -> Result<(), HostError> {
        let mut cfg = TransferConfig::default();
        let mut route_ptr = 0usize;
        for instr in program.instructions() {
            self.step(instr, &mut cfg, &mut route_ptr, program)?;
        }
        Ok(())
    }

    fn step(
        &mut self,
        instr: &Instruction,
        cfg: &mut TransferConfig,
        route_ptr: &mut usize,
        program: &Program,
    ) -> Result<(), HostError> {
        match instr.opcode {
            Opcode::SetAddress => {
                if instr.axis == 0xFF {
                    cfg.route = instr.rs2 as usize;
                } else if let Some(kind) = instr.metadata {
                    cfg.meta_addrs.insert((instr.axis, kind), instr.rs2);
                } else if instr.target == Target::Src || instr.target == Target::Both {
                    cfg.data_addr_src = instr.rs2;
                }
            }
            Opcode::SetSpan => {
                cfg.spans.insert(instr.axis, instr.rs2);
            }
            Opcode::SetDataStride | Opcode::SetMetadataStride | Opcode::SetConstant => {
                // Strides and constants are accepted; the functional model
                // moves whole row-major tensors.
            }
            Opcode::SetAxisType => {
                let f = axis_format_from_bits(instr.rs2)
                    .ok_or_else(|| HostError::BadConfig("bad axis format".into()))?;
                cfg.axis_types.insert(instr.axis, f);
            }
            Opcode::Issue => {
                let (src, dst) = program
                    .routes()
                    .get(cfg.route)
                    .cloned()
                    .or_else(|| program.routes().get(*route_ptr).cloned())
                    .ok_or(HostError::NoRoute)?;
                *route_ptr += 1;
                self.execute_transfer(&src, &dst, cfg)?;
                *cfg = TransferConfig::default();
                cfg.route = *route_ptr;
            }
        }
        Ok(())
    }

    fn read_f64(&self, addr: u64) -> Result<f64, HostError> {
        self.dram
            .get(addr as usize)
            .map(|&b| f64::from_bits(b))
            .ok_or(HostError::DramOutOfBounds(addr))
    }

    fn read_u64(&self, addr: u64) -> Result<u64, HostError> {
        self.dram
            .get(addr as usize)
            .copied()
            .ok_or(HostError::DramOutOfBounds(addr))
    }

    fn execute_transfer(
        &mut self,
        src: &MemUnit,
        dst: &MemUnit,
        cfg: &TransferConfig,
    ) -> Result<(), HostError> {
        let dst_name = match dst {
            MemUnit::Buffer(n) | MemUnit::Regfile(n) => n.clone(),
            MemUnit::Dram => {
                return Err(HostError::BadConfig(
                    "DRAM destinations not modelled".into(),
                ))
            }
        };
        if *src != MemUnit::Dram {
            // Buffer-to-regfile moves: forward the payload.
            let name = match src {
                MemUnit::Buffer(n) | MemUnit::Regfile(n) => n.clone(),
                // Guarded by the enclosing `src != Dram` check; report
                // rather than panic if that invariant ever breaks.
                MemUnit::Dram => return Err(HostError::BadConfig("unexpected DRAM source".into())),
            };
            let payload = self
                .buffers
                .get(&name)
                .cloned()
                .ok_or_else(|| HostError::BadConfig(format!("source buffer '{name}' empty")))?;
            // On-chip move: bandwidth-bound only.
            let words = match &payload {
                TensorPayload::Dense(m) => m.rows() * m.cols(),
                TensorPayload::Csr(m) => 2 * m.nnz() + m.rows() + 1,
                TensorPayload::Csc(m) => 2 * m.nnz() + m.cols() + 1,
            };
            self.cycles += self.dma.contiguous_cycles(words as u64) / 4;
            self.buffers.insert(dst_name, payload);
            return Ok(());
        }

        // DRAM source: decode the axis types.
        let fmt0 = cfg.axis_types.get(&0).copied().unwrap_or(AxisFormat::Dense);
        let fmt1 = cfg.axis_types.get(&1).copied().unwrap_or(AxisFormat::Dense);
        match (fmt1, fmt0) {
            (AxisFormat::Dense, AxisFormat::Dense) => {
                // Axis 1 = rows (outer), axis 0 = cols (inner) in the
                // Listing 7 convention.
                let cols = *cfg
                    .spans
                    .get(&0)
                    .ok_or_else(|| HostError::BadConfig("missing span(0)".into()))?
                    as usize;
                let rows = *cfg
                    .spans
                    .get(&1)
                    .ok_or_else(|| HostError::BadConfig("missing span(1)".into()))?
                    as usize;
                let mut m = DenseMatrix::zeros(rows, cols);
                for r in 0..rows {
                    for c in 0..cols {
                        m.set(
                            r,
                            c,
                            self.read_f64(cfg.data_addr_src + (r * cols + c) as u64)?,
                        );
                    }
                }
                self.cycles += self.dma.contiguous_cycles((rows * cols) as u64);
                self.buffers.insert(dst_name, TensorPayload::Dense(m));
            }
            (AxisFormat::Dense, AxisFormat::Compressed) => {
                // CSR: axis 1 dense rows, axis 0 compressed columns.
                let rows = *cfg
                    .spans
                    .get(&1)
                    .ok_or_else(|| HostError::BadConfig("missing span(1)".into()))?
                    as usize;
                let cols = cfg.spans.get(&2).copied().unwrap_or(u64::MAX) as usize;
                let row_id_addr = *cfg
                    .meta_addrs
                    .get(&(0, MetadataType::RowId))
                    .ok_or_else(|| HostError::BadConfig("missing ROW_ID address".into()))?;
                let coord_addr = *cfg
                    .meta_addrs
                    .get(&(0, MetadataType::Coord))
                    .ok_or_else(|| HostError::BadConfig("missing COORD address".into()))?;
                let mut row_ptr = Vec::with_capacity(rows + 1);
                for n in 0..=rows {
                    row_ptr.push(self.read_u64(row_id_addr + n as u64)? as usize);
                }
                let nnz = row_ptr
                    .last()
                    .copied()
                    .ok_or_else(|| HostError::BadConfig("empty row-pointer array".into()))?;
                let mut col_idx = Vec::with_capacity(nnz);
                let mut values = Vec::with_capacity(nnz);
                for n in 0..nnz {
                    col_idx.push(self.read_u64(coord_addr + n as u64)? as usize);
                    values.push(self.read_f64(cfg.data_addr_src + n as u64)?);
                }
                let real_cols = if cols == usize::MAX || cols == 0 {
                    col_idx.iter().copied().max().map_or(1, |m| m + 1)
                } else {
                    cols
                };
                let m = CsrMatrix::from_raw(rows, real_cols, row_ptr, col_idx, values);
                // Three contiguous arrays: data, row ids, coords.
                self.cycles += self.dma.contiguous_cycles(nnz as u64)
                    + self.dma.contiguous_cycles((rows + 1) as u64)
                    + self.dma.contiguous_cycles(nnz as u64);
                self.buffers.insert(dst_name, TensorPayload::Csr(m));
            }
            (AxisFormat::Compressed, AxisFormat::Dense) => {
                // CSC: axis 1 compressed columns, axis 0 dense rows — the
                // format OuterSPACE streams A's columns from.
                let cols = *cfg
                    .spans
                    .get(&1)
                    .ok_or_else(|| HostError::BadConfig("missing span(1)".into()))?
                    as usize;
                let rows = cfg.spans.get(&2).copied().unwrap_or(u64::MAX) as usize;
                let col_ptr_addr = *cfg
                    .meta_addrs
                    .get(&(1, MetadataType::RowId))
                    .ok_or_else(|| HostError::BadConfig("missing col-pointer address".into()))?;
                let coord_addr = *cfg
                    .meta_addrs
                    .get(&(1, MetadataType::Coord))
                    .ok_or_else(|| HostError::BadConfig("missing COORD address".into()))?;
                let mut col_ptr = Vec::with_capacity(cols + 1);
                for n in 0..=cols {
                    col_ptr.push(self.read_u64(col_ptr_addr + n as u64)? as usize);
                }
                let nnz = col_ptr
                    .last()
                    .copied()
                    .ok_or_else(|| HostError::BadConfig("empty column-pointer array".into()))?;
                let mut row_idx = Vec::with_capacity(nnz);
                let mut values = Vec::with_capacity(nnz);
                for n in 0..nnz {
                    row_idx.push(self.read_u64(coord_addr + n as u64)? as usize);
                    values.push(self.read_f64(cfg.data_addr_src + n as u64)?);
                }
                let real_rows = if rows == usize::MAX || rows == 0 {
                    row_idx.iter().copied().max().map_or(1, |m| m + 1)
                } else {
                    rows
                };
                // Build via the CSR of the transpose, then flip.
                let csr_t = CsrMatrix::from_raw(cols, real_rows, col_ptr, row_idx, values);
                let m = CscMatrix::from_csr(&csr_t.transpose());
                self.cycles += self.dma.contiguous_cycles(nnz as u64)
                    + self.dma.contiguous_cycles((cols + 1) as u64)
                    + self.dma.contiguous_cycles(nnz as u64);
                self.buffers.insert(dst_name, TensorPayload::Csc(m));
            }
            (f1, f0) => {
                return Err(HostError::BadConfig(format!(
                    "unsupported axis combination {f1:?}/{f0:?}"
                )))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_tensor::gen;

    #[test]
    fn dram_exhaustion_reported() {
        let mut host = Host::new();
        // 1100 x 1100 words > the 1 MiW DRAM.
        let big = DenseMatrix::zeros(1100, 1100);
        match host.dram_store_dense(&big) {
            Err(HostError::DramExhausted { needed, capacity }) => {
                assert!(needed > capacity);
            }
            other => panic!("expected DramExhausted, got {other:?}"),
        }
        // The failed allocation must not have moved the break: a small
        // store still succeeds afterwards.
        let small = DenseMatrix::zeros(4, 4);
        host.dram_store_dense(&small).unwrap();
    }

    #[test]
    fn dense_transfer_round_trip() {
        let a = gen::dense(4, 6, 1);
        let mut host = Host::new();
        let addr = host.dram_store_dense(&a).unwrap();
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_A"));
        p.set_data_addr_src(addr);
        p.set_span(0, 6);
        p.set_span(1, 4);
        p.set_axis_type(0, AxisFormat::Dense);
        p.set_axis_type(1, AxisFormat::Dense);
        p.issue();
        host.run(&p).unwrap();
        assert_eq!(host.buffer_dense("SRAM_A").unwrap(), a);
        assert!(host.cycles() > 0);
    }

    #[test]
    fn csr_transfer_round_trip() {
        let m = gen::uniform(8, 10, 0.3, 2);
        let mut host = Host::new();
        let (data, row_ids, coords) = host.dram_store_csr(&m).unwrap();
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_B"));
        p.set_data_addr_src(data);
        p.set_metadata_addr_src(0, MetadataType::RowId, row_ids);
        p.set_metadata_addr_src(0, MetadataType::Coord, coords);
        p.set_span(1, 8);
        p.set_span(2, 10);
        p.set_axis_type(0, AxisFormat::Compressed);
        p.set_axis_type(1, AxisFormat::Dense);
        p.issue();
        host.run(&p).unwrap();
        match host.buffer("SRAM_B").unwrap() {
            TensorPayload::Csr(got) => assert_eq!(got, &m),
            other => panic!("expected CSR payload, got {other:?}"),
        }
    }

    #[test]
    fn buffer_to_regfile_forwarding() {
        let a = gen::dense(2, 2, 3);
        let mut host = Host::new();
        let addr = host.dram_store_dense(&a).unwrap();
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_A"));
        p.set_data_addr_src(addr);
        p.set_span(0, 2);
        p.set_span(1, 2);
        p.set_axis_type(0, AxisFormat::Dense);
        p.set_axis_type(1, AxisFormat::Dense);
        p.issue();
        p.set_src_and_dst(MemUnit::buffer("SRAM_A"), MemUnit::regfile("rf_A"));
        p.issue();
        host.run(&p).unwrap();
        assert_eq!(host.buffer_dense("rf_A").unwrap(), a);
    }

    #[test]
    fn csc_transfer_round_trip() {
        let dense = gen::uniform(9, 7, 0.35, 11);
        let m = CscMatrix::from_csr(&dense);
        let mut host = Host::new();
        let (data, col_ptrs, coords) = host.dram_store_csc(&m).unwrap();
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_A"));
        p.set_data_addr_src(data);
        p.set_metadata_addr_src(1, MetadataType::RowId, col_ptrs);
        p.set_metadata_addr_src(1, MetadataType::Coord, coords);
        p.set_span(1, 7); // columns
        p.set_span(2, 9); // row bound
        p.set_axis_type(0, AxisFormat::Dense);
        p.set_axis_type(1, AxisFormat::Compressed);
        p.issue();
        host.run(&p).unwrap();
        match host.buffer("SRAM_A").unwrap() {
            TensorPayload::Csc(got) => assert_eq!(got.to_dense(), dense.to_dense()),
            other => panic!("expected CSC payload, got {other:?}"),
        }
    }

    #[test]
    fn issue_without_route_fails() {
        let mut host = Host::new();
        let mut p = Program::new();
        p.issue();
        assert_eq!(host.run(&p), Err(HostError::NoRoute));
    }

    #[test]
    fn missing_metadata_fails() {
        let mut host = Host::new();
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("B"));
        p.set_span(1, 4);
        p.set_axis_type(0, AxisFormat::Compressed);
        p.issue();
        assert!(matches!(host.run(&p), Err(HostError::BadConfig(_))));
    }

    #[test]
    fn more_dma_slots_do_not_change_contiguous_cycles() {
        let a = gen::dense(16, 16, 4);
        let run = |slots| {
            let mut host = Host::new().with_dma(DmaModel::with_slots(slots));
            let addr = host.dram_store_dense(&a).unwrap();
            let mut p = Program::new();
            p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("X"));
            p.set_data_addr_src(addr);
            p.set_span(0, 16);
            p.set_span(1, 16);
            p.set_axis_type(0, AxisFormat::Dense);
            p.set_axis_type(1, AxisFormat::Dense);
            p.issue();
            host.run(&p).unwrap();
            host.cycles()
        };
        assert_eq!(run(1), run(16));
    }
}
