//! Instruction encoding: the 64-bit RISC-V custom instruction format of
//! Table II.

use std::error::Error;
use std::fmt;

use stellar_tensor::AxisFormat;

/// The instruction opcodes of Table II (plus `Issue`, which launches the
/// configured transfer — `stellar_issue()` in Listing 7).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Opcode {
    /// Set a DRAM/SRAM address or regfile target.
    SetAddress = 0,
    /// Set the number of elements to move along an axis.
    SetSpan = 1,
    /// Set a data stride.
    SetDataStride = 2,
    /// Set a metadata stride (ROW_ID or COORD).
    SetMetadataStride = 3,
    /// Set an axis type ("Dense", "Compressed", ...).
    SetAxisType = 4,
    /// Set a scalar or boolean constant (e.g. `should_trail_reads`).
    SetConstant = 5,
    /// Launch the configured data movement.
    Issue = 6,
}

impl Opcode {
    fn from_bits(v: u8) -> Option<Opcode> {
        Some(match v {
            0 => Opcode::SetAddress,
            1 => Opcode::SetSpan,
            2 => Opcode::SetDataStride,
            3 => Opcode::SetMetadataStride,
            4 => Opcode::SetAxisType,
            5 => Opcode::SetConstant,
            6 => Opcode::Issue,
            _ => return None,
        })
    }
}

/// Whether a configuration applies to the source, the destination, or both
/// (the `Rs1[19:16]` field).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Target {
    /// Configure the source side.
    Src = 1,
    /// Configure the destination side.
    Dst = 2,
    /// Configure both sides.
    Both = 3,
}

impl Target {
    fn from_bits(v: u8) -> Option<Target> {
        Some(match v {
            1 => Target::Src,
            2 => Target::Dst,
            3 => Target::Both,
            _ => return None,
        })
    }
}

/// Sparse metadata kinds (the `ROW_ID` / `COORD` of Table II).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum MetadataType {
    /// CSR-style fiber boundaries.
    RowId = 0,
    /// Per-element coordinates.
    Coord = 1,
}

impl MetadataType {
    fn from_bits(v: u8) -> Option<MetadataType> {
        Some(match v {
            0 => MetadataType::RowId,
            1 => MetadataType::Coord,
            _ => return None,
        })
    }
}

/// Encodes an [`AxisFormat`] in the `rs2` payload of `set_axis_type`.
pub(crate) fn axis_format_bits(f: AxisFormat) -> u64 {
    match f {
        AxisFormat::Dense => 0,
        AxisFormat::Compressed => 1,
        AxisFormat::Bitvector => 2,
        AxisFormat::LinkedList => 3,
    }
}

pub(crate) fn axis_format_from_bits(v: u64) -> Option<AxisFormat> {
    Some(match v {
        0 => AxisFormat::Dense,
        1 => AxisFormat::Compressed,
        2 => AxisFormat::Bitvector,
        3 => AxisFormat::LinkedList,
        _ => return None,
    })
}

/// A decoded Stellar instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Instruction {
    /// The operation.
    pub opcode: Opcode,
    /// Source/destination/both (ignored by `Issue` and `SetConstant`).
    pub target: Target,
    /// The axis being configured (`Rs1[15:0]`, low 8 bits) — or the
    /// constant ID for `SetConstant`.
    pub axis: u8,
    /// Metadata type for `SetMetadataStride` (packed into `Rs1[15:8]`).
    pub metadata: Option<MetadataType>,
    /// The value operand (`Rs2`): address, span, stride, or axis type.
    pub rs2: u64,
}

/// Errors from decoding malformed instruction words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IsaError {
    /// Unknown opcode bits.
    BadOpcode(u8),
    /// Unknown target bits.
    BadTarget(u8),
    /// Unknown metadata-type bits.
    BadMetadata(u8),
    /// Unknown axis-format bits in `rs2`.
    BadAxisFormat(u64),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::BadOpcode(v) => write!(f, "unknown opcode bits {v:#x}"),
            IsaError::BadTarget(v) => write!(f, "unknown target bits {v:#x}"),
            IsaError::BadMetadata(v) => write!(f, "unknown metadata bits {v:#x}"),
            IsaError::BadAxisFormat(v) => write!(f, "unknown axis format bits {v:#x}"),
        }
    }
}

impl Error for IsaError {}

impl Instruction {
    /// Encodes to `(funct, rs1, rs2)`: the custom-instruction fields a RoCC
    /// command would carry.
    pub fn encode(&self) -> (u8, u64, u64) {
        let mut rs1: u64 = 0;
        rs1 |= (self.target as u64) << 16;
        rs1 |= self.axis as u64;
        if let Some(m) = self.metadata {
            rs1 |= (m as u64) << 8;
            rs1 |= 1 << 15; // metadata-present flag
        }
        (self.opcode as u8, rs1, self.rs2)
    }

    /// Decodes from `(funct, rs1, rs2)`.
    ///
    /// # Errors
    ///
    /// Returns an [`IsaError`] on unknown field encodings.
    pub fn decode(funct: u8, rs1: u64, rs2: u64) -> Result<Instruction, IsaError> {
        let opcode = Opcode::from_bits(funct).ok_or(IsaError::BadOpcode(funct))?;
        let target_bits = ((rs1 >> 16) & 0xF) as u8;
        let target = Target::from_bits(target_bits).ok_or(IsaError::BadTarget(target_bits))?;
        let axis = (rs1 & 0xFF) as u8;
        let metadata = if (rs1 >> 15) & 1 == 1 {
            let mbits = ((rs1 >> 8) & 0x7F) as u8 & 0x3;
            Some(MetadataType::from_bits(mbits).ok_or(IsaError::BadMetadata(mbits))?)
        } else {
            None
        };
        if opcode == Opcode::SetAxisType {
            axis_format_from_bits(rs2).ok_or(IsaError::BadAxisFormat(rs2))?;
        }
        Ok(Instruction {
            opcode,
            target,
            axis,
            metadata,
            rs2,
        })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}(target={:?}, axis={}, rs2={:#x})",
            self.opcode, self.target, self.axis, self.rs2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(op: Opcode, meta: Option<MetadataType>) -> Instruction {
        Instruction {
            opcode: op,
            target: Target::Both,
            axis: 3,
            metadata: meta,
            rs2: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn round_trip_all_opcodes() {
        for op in [
            Opcode::SetAddress,
            Opcode::SetSpan,
            Opcode::SetDataStride,
            Opcode::SetMetadataStride,
            Opcode::SetAxisType,
            Opcode::SetConstant,
            Opcode::Issue,
        ] {
            let i = Instruction {
                rs2: if op == Opcode::SetAxisType { 1 } else { 42 },
                ..sample(op, None)
            };
            let (f, r1, r2) = i.encode();
            assert_eq!(Instruction::decode(f, r1, r2).unwrap(), i, "{op:?}");
        }
    }

    #[test]
    fn round_trip_metadata() {
        for m in [MetadataType::RowId, MetadataType::Coord] {
            let i = sample(Opcode::SetMetadataStride, Some(m));
            let (f, r1, r2) = i.encode();
            assert_eq!(Instruction::decode(f, r1, r2).unwrap(), i);
        }
    }

    #[test]
    fn round_trip_targets() {
        for t in [Target::Src, Target::Dst, Target::Both] {
            let i = Instruction {
                target: t,
                ..sample(Opcode::SetSpan, None)
            };
            let (f, r1, r2) = i.encode();
            assert_eq!(Instruction::decode(f, r1, r2).unwrap().target, t);
        }
    }

    #[test]
    fn bad_fields_rejected() {
        assert_eq!(Instruction::decode(99, 0, 0), Err(IsaError::BadOpcode(99)));
        // Target bits 0 are invalid.
        assert_eq!(
            Instruction::decode(Opcode::SetSpan as u8, 0, 0),
            Err(IsaError::BadTarget(0))
        );
        // Axis format 9 is invalid.
        let rs1 = (Target::Both as u64) << 16;
        assert_eq!(
            Instruction::decode(Opcode::SetAxisType as u8, rs1, 9),
            Err(IsaError::BadAxisFormat(9))
        );
    }

    #[test]
    fn axis_format_bits_round_trip() {
        for f in [
            AxisFormat::Dense,
            AxisFormat::Compressed,
            AxisFormat::Bitvector,
            AxisFormat::LinkedList,
        ] {
            assert_eq!(axis_format_from_bits(axis_format_bits(f)), Some(f));
        }
        assert_eq!(axis_format_from_bits(17), None);
    }
}
