//! A disassembler: renders encoded instruction streams back into the
//! C-style pseudocode of Listing 7, for debugging programs and for
//! documentation.

use stellar_tensor::AxisFormat;

use crate::encoding::{axis_format_from_bits, Instruction, MetadataType, Opcode, Target};
use crate::program::Program;

fn target_name(t: Target) -> &'static str {
    match t {
        Target::Src => "FOR_SRC",
        Target::Dst => "FOR_DST",
        Target::Both => "FOR_BOTH",
    }
}

fn metadata_name(m: MetadataType) -> &'static str {
    match m {
        MetadataType::RowId => "ROW_ID",
        MetadataType::Coord => "COORDS",
    }
}

fn axis_name(f: AxisFormat) -> &'static str {
    match f {
        AxisFormat::Dense => "DENSE",
        AxisFormat::Compressed => "COMPRESSED",
        AxisFormat::Bitvector => "BITVECTOR",
        AxisFormat::LinkedList => "LINKED_LIST",
    }
}

/// Renders one instruction as a line of Listing-7-style C.
pub fn disassemble_instruction(i: &Instruction) -> String {
    let t = target_name(i.target);
    match i.opcode {
        Opcode::SetAddress => match (i.axis, i.metadata) {
            (0xFF, _) => format!("set_src_and_dst(/*route=*/{});", i.rs2),
            (_, Some(m)) => format!(
                "set_metadata_addr({t}, /*axis=*/{}, {}, 0x{:x});",
                i.axis,
                metadata_name(m),
                i.rs2
            ),
            (_, None) => format!("set_data_addr({t}, 0x{:x});", i.rs2),
        },
        Opcode::SetSpan => {
            if i.rs2 == u64::MAX {
                format!("set_span({t}, /*axis=*/{}, ENTIRE_AXIS);", i.axis)
            } else {
                format!("set_span({t}, /*axis=*/{}, {});", i.axis, i.rs2)
            }
        }
        Opcode::SetDataStride => format!("set_stride({t}, /*axis=*/{}, {});", i.axis, i.rs2),
        Opcode::SetMetadataStride => format!(
            "set_metadata_stride({t}, /*axis=*/{}, {}, {});",
            i.axis,
            i.metadata.map_or("?", metadata_name),
            i.rs2
        ),
        Opcode::SetAxisType => format!(
            "set_axis({t}, /*axis=*/{}, {});",
            i.axis,
            axis_format_from_bits(i.rs2).map_or("?", axis_name)
        ),
        Opcode::SetConstant => format!("set_constant(/*id=*/{}, {});", i.axis, i.rs2),
        Opcode::Issue => "stellar_issue();".to_string(),
    }
}

/// Renders a whole program as Listing-7-style C.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for (n, i) in program.instructions().iter().enumerate() {
        // Annotate route establishment with the actual units.
        if i.opcode == Opcode::SetAddress && i.axis == 0xFF {
            if let Some((src, dst)) = program.routes().get(i.rs2 as usize) {
                out.push_str(&format!("// transfer {}: {src:?} -> {dst:?}\n", i.rs2));
            }
        }
        out.push_str(&disassemble_instruction(i));
        out.push('\n');
        if i.opcode == Opcode::Issue && n + 1 < program.instructions().len() {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::MemUnit;

    #[test]
    fn listing7_shape_round_trips_to_c() {
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_B"));
        p.set_data_addr_src(0x2000);
        p.set_metadata_addr_src(0, MetadataType::RowId, 0x3000);
        p.set_span(0, u64::MAX);
        p.set_span(1, 64);
        p.set_axis_type(0, AxisFormat::Compressed);
        p.set_metadata_stride(0, MetadataType::Coord, 1);
        p.issue();
        let c = disassemble(&p);
        assert!(c.contains("set_src_and_dst"));
        assert!(c.contains("set_data_addr(FOR_SRC, 0x2000);"));
        assert!(c.contains("set_metadata_addr(FOR_SRC, /*axis=*/0, ROW_ID, 0x3000);"));
        assert!(c.contains("set_span(FOR_BOTH, /*axis=*/0, ENTIRE_AXIS);"));
        assert!(c.contains("set_axis(FOR_BOTH, /*axis=*/0, COMPRESSED);"));
        assert!(c.contains("set_metadata_stride(FOR_BOTH, /*axis=*/0, COORDS, 1);"));
        assert!(c.contains("stellar_issue();"));
        assert!(c.contains("SRAM_B"));
    }

    #[test]
    fn every_opcode_disassembles() {
        use crate::encoding::Instruction;
        for op in [
            Opcode::SetAddress,
            Opcode::SetSpan,
            Opcode::SetDataStride,
            Opcode::SetMetadataStride,
            Opcode::SetAxisType,
            Opcode::SetConstant,
            Opcode::Issue,
        ] {
            let i = Instruction {
                opcode: op,
                target: Target::Both,
                axis: 1,
                metadata: None,
                rs2: if op == Opcode::SetAxisType { 0 } else { 5 },
            };
            let s = disassemble_instruction(&i);
            assert!(!s.is_empty());
            assert!(s.ends_with(';'), "{s}");
        }
    }

    #[test]
    fn decoded_stream_disassembles_identically() {
        let mut p = Program::new();
        p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("X"));
        p.set_span(0, 8);
        p.issue();
        for i in p.instructions() {
            let (f, r1, r2) = i.encode();
            let back = Instruction::decode(f, r1, r2).unwrap();
            assert_eq!(disassemble_instruction(&back), disassemble_instruction(i));
        }
    }
}
