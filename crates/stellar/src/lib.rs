//! # Stellar
//!
//! A Rust reproduction of *"Stellar: An Automated Design Framework for
//! Dense and Sparse Spatial Accelerators"* (MICRO 2024): a specification
//! language that separates five accelerator design concerns, a compiler
//! that elaborates specifications into hardware designs, a Verilog
//! emitter, analytical area/energy/timing models, a cycle-level simulator,
//! and the RISC-V-style programming interface of the paper's Table II.
//!
//! This crate is the facade: it re-exports every sub-crate under one name.
//!
//! ```
//! use stellar::prelude::*;
//!
//! // 1. Functionality (Listing 1) + dataflow (Figure 2b) = an accelerator.
//! let spec = AcceleratorSpec::new("quick", Functionality::matmul(4, 4, 4))
//!     .with_transform(SpaceTimeTransform::output_stationary());
//! let design = compile(&spec)?;
//!
//! // 2. Emit synthesizable Verilog.
//! let verilog = stellar::rtl::emit_accelerator(&design).to_verilog();
//! assert!(verilog.contains("module quick_top"));
//!
//! // 3. Estimate area.
//! let area = stellar::area::area_of(&design, &stellar::area::Technology::asap7());
//! assert!(area.total_um2() > 0.0);
//! # Ok::<(), CompileError>(())
//! ```

pub use stellar_core as core;
pub use stellar_linalg as linalg;
pub use stellar_tensor as tensor;

pub use stellar_accels as accels;
pub use stellar_area as area;
pub use stellar_isa as isa;
pub use stellar_rtl as rtl;
pub use stellar_sim as sim;
pub use stellar_workloads as workloads;

/// The types needed to specify and compile an accelerator.
pub mod prelude {
    pub use stellar_core::prelude::*;
}
