//! A small exact rational number type.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Greatest common divisor of two non-negative integers.
fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

/// An exact rational number backed by `i64` numerator and denominator.
///
/// The representation is always normalized: the denominator is positive and
/// `gcd(|num|, den) == 1`. Zero is represented as `0/1`.
///
/// # Examples
///
/// ```
/// use stellar_linalg::Rational;
///
/// let half = Rational::new(1, 2);
/// let third = Rational::new(1, 3);
/// assert_eq!(half + third, Rational::new(5, 6));
/// assert!(half > third);
/// assert_eq!(Rational::new(2, 4), half);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i64,
    den: i64,
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a new rational `num / den`, normalizing the representation.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: i64, den: i64) -> Rational {
        assert!(den != 0, "rational denominator must be non-zero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num.abs(), den.abs()).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The numerator of the normalized representation.
    pub fn numer(self) -> i64 {
        self.num
    }

    /// The (always positive) denominator of the normalized representation.
    pub fn denom(self) -> i64 {
        self.den
    }

    /// Returns `true` if this rational is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Returns `true` if this rational equals zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Converts to `i64` if the value is an integer.
    pub fn to_integer(self) -> Option<i64> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Rational {
        assert!(self.num != 0, "cannot invert zero");
        Rational::new(self.den, self.num)
    }

    /// The absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Approximate conversion to `f64` (for reporting only; all compiler
    /// decisions use exact arithmetic).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Default for Rational {
    fn default() -> Rational {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Rational {
        Rational { num: v, den: 1 }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (self.num as i128 * other.den as i128).cmp(&(other.num as i128 * self.den as i128))
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
        assert_eq!(Rational::new(0, -5).denom(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 2) > Rational::new(1, 3));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 7) == Rational::ONE);
    }

    #[test]
    fn integer_checks() {
        assert!(Rational::new(4, 2).is_integer());
        assert_eq!(Rational::new(4, 2).to_integer(), Some(2));
        assert_eq!(Rational::new(1, 2).to_integer(), None);
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(Rational::new(2, 3).recip(), Rational::new(3, 2));
        assert_eq!(Rational::new(-2, 3).recip(), Rational::new(-3, 2));
        assert_eq!(Rational::new(-2, 3).abs(), Rational::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Rational::new(3, 1)), "3");
        assert_eq!(format!("{}", Rational::new(3, 2)), "3/2");
        assert_eq!(format!("{:?}", Rational::new(-3, 2)), "-3/2");
    }
}
