//! Exact integer and rational linear algebra for Stellar's space-time
//! transforms.
//!
//! Stellar dataflows are *invertible integer matrices* mapping a tensor
//! iteration space to physical space and time coordinates (Equation 1 of the
//! paper). Inverting such a matrix in floating point would introduce rounding
//! error into coordinate recovery (`T⁻¹ · (x, y, t)` must reproduce the exact
//! tensor iterators), so this crate provides exact arithmetic:
//!
//! * [`Rational`] — a normalized `i64`-backed rational number.
//! * [`IntMat`] — a dense integer matrix with exact determinant (Bareiss
//!   fraction-free elimination) and adjugate-based inverse.
//! * [`RatMat`] — a dense rational matrix, used for inverses.
//! * [`IntVec`] — convenience alias plus helpers for lattice vectors.
//!
//! # Examples
//!
//! ```
//! use stellar_linalg::IntMat;
//!
//! // The output-stationary matmul space-time transform from Figure 2b.
//! let t = IntMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[1, 1, 1]]);
//! assert_eq!(t.det(), 1);
//! let inv = t.inverse().expect("T is invertible");
//! let xyt = t.mul_vec(&[2, 3, 4]);
//! let ijk = inv.mul_int_vec(&xyt).expect("exact integer preimage");
//! assert_eq!(ijk, vec![2, 3, 4]);
//! ```

mod matrix;
mod rational;
mod vector;

pub use matrix::{IntMat, RatMat};
pub use rational::Rational;
pub use vector::{add, dot, is_zero, scale, sub, IntVec};
