//! Small helpers for integer lattice vectors.
//!
//! Difference vectors (§IV-B of the paper) and space-time coordinates are
//! plain `Vec<i64>` lattice vectors; these free functions keep call sites in
//! the compiler terse.

/// An integer lattice vector, e.g. a difference vector `(Δi, Δj, Δk)` or a
/// space-time coordinate `(x, y, t)`.
pub type IntVec = Vec<i64>;

/// Element-wise sum of two equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn add(a: &[i64], b: &[i64]) -> IntVec {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b` of two equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn sub(a: &[i64], b: &[i64]) -> IntVec {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scales a vector by an integer factor.
pub fn scale(a: &[i64], k: i64) -> IntVec {
    a.iter().map(|x| x * k).collect()
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn dot(a: &[i64], b: &[i64]) -> i64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Returns `true` if every component is zero.
pub fn is_zero(a: &[i64]) -> bool {
    a.iter().all(|&x| x == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_ops() {
        assert_eq!(add(&[1, 2], &[3, 4]), vec![4, 6]);
        assert_eq!(sub(&[1, 2], &[3, 4]), vec![-2, -2]);
        assert_eq!(scale(&[1, -2], 3), vec![3, -6]);
        assert_eq!(dot(&[1, 2, 3], &[4, 5, 6]), 32);
        assert!(is_zero(&[0, 0, 0]));
        assert!(!is_zero(&[0, 1, 0]));
        assert!(is_zero(&[]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = add(&[1], &[1, 2]);
    }
}
