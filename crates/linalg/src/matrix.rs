//! Dense integer and rational matrices with exact inverses.

use std::fmt;

use crate::rational::Rational;
use crate::vector::IntVec;

/// A dense row-major integer matrix.
///
/// `IntMat` is the representation of Stellar space-time transforms
/// (Equation 1 of the paper): square, integer, and invertible. Rectangular
/// matrices are also supported for index maps (tensor coordinates as affine
/// functions of iterators).
///
/// # Examples
///
/// ```
/// use stellar_linalg::IntMat;
///
/// let id = IntMat::identity(3);
/// assert_eq!(id.mul_vec(&[1, 2, 3]), vec![1, 2, 3]);
/// assert_eq!(id.det(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IntMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IntMat {
    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[i64]]) -> IntMat {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        IntMat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix of the given shape from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<i64>) -> IntMat {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        IntMat { rows, cols, data }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> IntMat {
        let mut m = IntMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// An all-zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> IntMat {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        IntMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[i64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [i64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[i64]) -> IntVec {
        assert_eq!(v.len(), self.cols, "vector length must equal matrix cols");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn mul_mat(&self, rhs: &IntMat) -> IntMat {
        assert_eq!(self.cols, rhs.rows, "inner matrix dimensions must agree");
        let mut out = IntMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> IntMat {
        let mut out = IntMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Exact determinant via the Bareiss fraction-free algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn det(&self) -> i64 {
        assert!(self.is_square(), "determinant requires a square matrix");
        let n = self.rows;
        let mut m: Vec<i128> = self.data.iter().map(|&x| x as i128).collect();
        let mut sign = 1i128;
        let mut prev = 1i128;
        for k in 0..n.saturating_sub(1) {
            // Pivot if needed.
            if m[k * n + k] == 0 {
                let swap = (k + 1..n).find(|&r| m[r * n + k] != 0);
                match swap {
                    Some(r) => {
                        for c in 0..n {
                            m.swap(k * n + c, r * n + c);
                        }
                        sign = -sign;
                    }
                    None => return 0,
                }
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    m[i * n + j] =
                        (m[i * n + j] * m[k * n + k] - m[i * n + k] * m[k * n + j]) / prev;
                }
                m[i * n + k] = 0;
            }
            prev = m[k * n + k];
        }
        (sign * m[n * n - 1]) as i64
    }

    /// The minor matrix with row `r` and column `c` removed.
    fn minor(&self, r: usize, c: usize) -> IntMat {
        let mut data = Vec::with_capacity((self.rows - 1) * (self.cols - 1));
        for i in 0..self.rows {
            if i == r {
                continue;
            }
            for j in 0..self.cols {
                if j == c {
                    continue;
                }
                data.push(self[(i, j)]);
            }
        }
        IntMat::from_vec(self.rows - 1, self.cols - 1, data)
    }

    /// Exact inverse as a rational matrix, or `None` if singular.
    ///
    /// Computed via the adjugate: `T⁻¹ = adj(T) / det(T)`, keeping every
    /// entry exact so that `T⁻¹ · (x, y, t)` recovers integer tensor
    /// iterators without rounding (§IV-B of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<RatMat> {
        assert!(self.is_square(), "inverse requires a square matrix");
        let n = self.rows;
        let det = self.det();
        if det == 0 {
            return None;
        }
        if n == 1 {
            return Some(RatMat {
                rows: 1,
                cols: 1,
                data: vec![Rational::new(1, det)],
            });
        }
        let mut data = vec![Rational::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                let cof = self.minor(i, j).det();
                let sign = if (i + j) % 2 == 0 { 1 } else { -1 };
                // Adjugate is the transpose of the cofactor matrix.
                data[j * n + i] = Rational::new(sign * cof, det);
            }
        }
        Some(RatMat {
            rows: n,
            cols: n,
            data,
        })
    }

    /// Returns `true` if the matrix is square with non-zero determinant.
    pub fn is_invertible(&self) -> bool {
        self.is_square() && self.det() != 0
    }
}

impl std::ops::Index<(usize, usize)> for IntMat {
    type Output = i64;
    fn index(&self, (r, c): (usize, usize)) -> &i64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IntMat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut i64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for IntMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IntMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for IntMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A dense row-major matrix of exact [`Rational`] entries.
///
/// Produced by [`IntMat::inverse`]; used to recover tensor iterators from
/// space-time coordinates.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMat {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RatMat {
    /// The rational identity matrix of size `n`.
    pub fn identity(n: usize) -> RatMat {
        let mut data = vec![Rational::ZERO; n * n];
        for i in 0..n {
            data[i * n + i] = Rational::from(1);
        }
        RatMat {
            rows: n,
            cols: n,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product with an integer vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<Rational> {
        assert_eq!(v.len(), self.cols, "vector length must equal matrix cols");
        (0..self.rows)
            .map(|r| {
                let mut acc = Rational::ZERO;
                for (c, &x) in v.iter().enumerate() {
                    acc = acc + self.data[r * self.cols + c] * Rational::from(x);
                }
                acc
            })
            .collect()
    }

    /// Matrix–vector product, returning `Some` only when every component of
    /// the result is an integer. This is the coordinate-recovery operation a
    /// Stellar PE performs: a space-time point that maps to a fractional
    /// iteration point corresponds to no tensor iteration at all.
    pub fn mul_int_vec(&self, v: &[i64]) -> Option<IntVec> {
        self.mul_vec(v)
            .into_iter()
            .map(|r| r.to_integer())
            .collect()
    }

    /// Entry access.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, r: usize, c: usize) -> Rational {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Converts back to an integer matrix if every entry is integral.
    pub fn to_int(&self) -> Option<IntMat> {
        let data: Option<Vec<i64>> = self.data.iter().map(|r| r.to_integer()).collect();
        Some(IntMat::from_vec(self.rows, self.cols, data?))
    }
}

impl fmt::Debug for RatMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.at(r, c))?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let id = IntMat::identity(4);
        assert_eq!(id.det(), 1);
        assert_eq!(id.mul_vec(&[5, 6, 7, 8]), vec![5, 6, 7, 8]);
        let inv = id.inverse().unwrap();
        assert_eq!(inv.to_int().unwrap(), id);
    }

    #[test]
    fn det_known_values() {
        let m = IntMat::from_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(m.det(), -2);
        let m = IntMat::from_rows(&[&[2, 0, 0], &[0, 3, 0], &[0, 0, 4]]);
        assert_eq!(m.det(), 24);
        let singular = IntMat::from_rows(&[&[1, 2], &[2, 4]]);
        assert_eq!(singular.det(), 0);
        assert!(singular.inverse().is_none());
    }

    #[test]
    fn det_needs_pivoting() {
        let m = IntMat::from_rows(&[&[0, 1], &[1, 0]]);
        assert_eq!(m.det(), -1);
        let m = IntMat::from_rows(&[&[0, 0, 1], &[0, 1, 0], &[1, 0, 0]]);
        assert_eq!(m.det(), -1);
    }

    #[test]
    fn inverse_round_trip() {
        // Output-stationary transform from Figure 2b.
        let t = IntMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[1, 1, 1]]);
        let inv = t.inverse().unwrap();
        for v in [[0, 0, 0], [1, 2, 3], [-4, 5, -6], [7, 7, 7]] {
            let xyt = t.mul_vec(&v);
            assert_eq!(inv.mul_int_vec(&xyt).unwrap(), v.to_vec());
        }
    }

    #[test]
    fn inverse_fractional_preimage_detected() {
        // det = 2: half the lattice has no integer preimage.
        let t = IntMat::from_rows(&[&[2, 0], &[0, 1]]);
        let inv = t.inverse().unwrap();
        assert_eq!(inv.mul_int_vec(&[2, 3]).unwrap(), vec![1, 3]);
        assert!(inv.mul_int_vec(&[3, 3]).is_none());
    }

    #[test]
    fn mul_mat_associates_with_vec() {
        let a = IntMat::from_rows(&[&[1, 2], &[3, 4]]);
        let b = IntMat::from_rows(&[&[0, 1], &[1, 1]]);
        let v = [5, -3];
        assert_eq!(a.mul_mat(&b).mul_vec(&v), a.mul_vec(&b.mul_vec(&v)));
    }

    #[test]
    fn transpose_involution() {
        let a = IntMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn hexagonal_transform_invertible() {
        // The hexagonal dataflow (Figure 2c) uses a transform that spatially
        // unrolls all three matmul indices onto a 2D plane.
        let t = IntMat::from_rows(&[&[1, 0, -1], &[0, 1, -1], &[1, 1, 1]]);
        assert!(t.is_invertible());
        let inv = t.inverse().unwrap();
        let xyt = t.mul_vec(&[3, 1, 2]);
        assert_eq!(inv.mul_int_vec(&xyt).unwrap(), vec![3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn det_non_square_panics() {
        let _ = IntMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]).det();
    }
}
