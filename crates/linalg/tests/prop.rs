//! Property-based tests for exact linear algebra invariants.

use proptest::prelude::*;
use stellar_linalg::{IntMat, Rational};

fn small_mat(n: usize) -> impl Strategy<Value = IntMat> {
    proptest::collection::vec(-5i64..=5, n * n).prop_map(move |data| IntMat::from_vec(n, n, data))
}

proptest! {
    #[test]
    fn rational_add_commutes(a in -50i64..50, b in 1i64..50, c in -50i64..50, d in 1i64..50) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
    }

    #[test]
    fn rational_add_associates(a in -20i64..20, b in 1i64..10, c in -20i64..20,
                               d in 1i64..10, e in -20i64..20, f in 1i64..10) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        let z = Rational::new(e, f);
        prop_assert_eq!((x + y) + z, x + (y + z));
        prop_assert_eq!((x * y) * z, x * (y * z));
        prop_assert_eq!(x * (y + z), x * y + x * z);
    }

    #[test]
    fn rational_sub_is_add_neg(a in -50i64..50, b in 1i64..50, c in -50i64..50, d in 1i64..50) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        prop_assert_eq!(x - y, x + (-y));
    }

    #[test]
    fn det_of_product_is_product_of_dets(a in small_mat(3), b in small_mat(3)) {
        prop_assert_eq!(a.mul_mat(&b).det(), a.det() * b.det());
    }

    #[test]
    fn det_transpose_invariant(a in small_mat(3)) {
        prop_assert_eq!(a.det(), a.transpose().det());
    }

    #[test]
    fn inverse_recovers_preimage(a in small_mat(3), v in proptest::collection::vec(-10i64..=10, 3)) {
        if let Some(inv) = a.inverse() {
            let image = a.mul_vec(&v);
            prop_assert_eq!(inv.mul_int_vec(&image), Some(v));
        } else {
            prop_assert_eq!(a.det(), 0);
        }
    }

    #[test]
    fn unimodular_inverse_is_integral(perm in proptest::sample::select(vec![
        [0usize, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
    ])) {
        // Permutation matrices are unimodular; inverse must be integral.
        let mut m = IntMat::zeros(3, 3);
        for (r, &c) in perm.iter().enumerate() {
            m[(r, c)] = 1;
        }
        prop_assert_eq!(m.det().abs(), 1);
        let inv = m.inverse().unwrap().to_int().unwrap();
        prop_assert_eq!(m.mul_mat(&inv), IntMat::identity(3));
    }

    #[test]
    fn mat_vec_linear(a in small_mat(3),
                      u in proptest::collection::vec(-10i64..=10, 3),
                      w in proptest::collection::vec(-10i64..=10, 3)) {
        let sum = stellar_linalg::add(&u, &w);
        let lhs = a.mul_vec(&sum);
        let rhs = stellar_linalg::add(&a.mul_vec(&u), &a.mul_vec(&w));
        prop_assert_eq!(lhs, rhs);
    }
}
