//! The paper's headline evaluation claims, asserted as tests. Exact
//! numbers are not expected to match (our substrate is a model, not the
//! authors' testbed); the *shapes* — who wins, by roughly what factor,
//! where crossovers fall — are what these tests pin down.

use stellar::accels::{
    compare_on_suite_matrix, gemmini_design, handwritten_gemmini_area, outerspace_throughput,
    run_alexnet, run_resnet50, OuterSpaceConfig, ScnnConfig,
};
use stellar::area::{
    area_of, energy_per_mac_pj, max_frequency_mhz, merger_area_ratio, EnergyModel, Technology,
};
use stellar::sim::GemmParams;
use stellar::workloads::suite;

/// §VI-B / Figure 16a: "The Stellar-generated Gemmini accelerator achieved
/// 90% of the utilization of the handwritten Gemmini accelerator".
#[test]
fn gemmini_utilization_ratio_near_90_percent() {
    let hand = run_resnet50(&GemmParams::handwritten_gemmini()).unwrap();
    let stellar = run_resnet50(&GemmParams::stellar_gemmini()).unwrap();
    let util = |rows: &[(&str, stellar::sim::SimStats)]| {
        let busy: u64 = rows.iter().map(|(_, s)| s.utilization.busy).sum();
        let total: u64 = rows.iter().map(|(_, s)| s.utilization.total).sum();
        busy as f64 / total as f64
    };
    let ratio = util(&stellar) / util(&hand);
    assert!(
        (0.84..0.96).contains(&ratio),
        "utilization ratio {ratio:.3}, paper reports ~0.90"
    );
}

/// Table III: "the Stellar-generated Gemmini accelerator only consumed 13%
/// more area than the hand-designed accelerator".
#[test]
fn gemmini_area_overhead_near_13_percent() {
    let stellar_total = area_of(&gemmini_design(), &Technology::asap7()).total_um2();
    let hand_total: f64 = handwritten_gemmini_area().iter().map(|(_, a)| a).sum();
    let overhead = stellar_total / hand_total - 1.0;
    assert!(
        (0.05..0.25).contains(&overhead),
        "area overhead {:.1}%, paper reports +13%",
        100.0 * overhead
    );
}

/// §VI-B: the handwritten design failed timing above 700 MHz while the
/// Stellar-generated one reached 1 GHz.
#[test]
fn frequency_gap_from_address_generators() {
    let d = gemmini_design();
    let tech = Technology::asap7();
    let central = max_frequency_mhz(&d, true, &tech);
    let distributed = max_frequency_mhz(&d, false, &tech);
    assert!(
        (550.0..850.0).contains(&central),
        "centralized {central:.0} MHz"
    );
    assert!(
        (900.0..1400.0).contains(&distributed),
        "distributed {distributed:.0} MHz"
    );
}

/// Figure 17: "Stellar's power overhead ranges from 7% at best to 30% at
/// worst ... on various layers of ResNet50".
#[test]
fn energy_overhead_range_spans_layers() {
    let mut hand_design = gemmini_design();
    for arr in &mut hand_design.spatial_arrays {
        arr.has_global_stall = false;
    }
    let hand_model = EnergyModel::new(&hand_design, Technology::intel22());
    let stellar_model = EnergyModel::new(&gemmini_design(), Technology::intel22());
    let hand = run_resnet50(&GemmParams::handwritten_gemmini()).unwrap();
    let stellar = run_resnet50(&GemmParams::stellar_gemmini()).unwrap();
    let overheads: Vec<f64> = hand
        .iter()
        .zip(&stellar)
        .map(|((_, h), (_, s))| {
            energy_per_mac_pj(&stellar_model, &s.traffic)
                / energy_per_mac_pj(&hand_model, &h.traffic)
                - 1.0
        })
        .collect();
    let min = overheads.iter().copied().fold(f64::INFINITY, f64::min);
    let max = overheads.iter().copied().fold(0.0, f64::max);
    assert!(
        min > 0.03,
        "best-case overhead {min:.3} should be small but positive"
    );
    assert!(max > 0.15, "worst-case overhead {max:.3} should be large");
    assert!(
        max < 0.45,
        "worst-case overhead {max:.3} should stay bounded"
    );
    assert!(
        max / min.max(1e-9) > 2.0,
        "overhead must vary substantially by layer"
    );
}

/// Figure 15: "the Stellar-generated SCNN achieved 83%-94% of the
/// hand-designed accelerator's reported performance".
#[test]
fn scnn_performance_band() {
    let hand = run_alexnet(&ScnnConfig::handwritten());
    let stellar = run_alexnet(&ScnnConfig::stellar());
    for (h, s) in hand.iter().zip(&stellar) {
        let ratio = h.cycles as f64 / s.cycles as f64;
        assert!(
            (0.78..0.97).contains(&ratio),
            "{}: ratio {ratio:.3} outside the 83%-94% band (with slack)",
            h.name
        );
    }
}

/// Figure 16b / §VI-C: default DMA ~1.42 GFLOP/s, 16-request DMA ~2.1,
/// handwritten ~2.9. We assert the ordering and rough magnitudes.
#[test]
fn outerspace_dma_fix_shape() {
    let mats = suite();
    let avg = |cfg: &OuterSpaceConfig| {
        let sum: f64 = mats
            .iter()
            .enumerate()
            .map(|(n, m)| outerspace_throughput(m, cfg, 50 + n as u64).gflops)
            .sum();
        sum / mats.len() as f64
    };
    let d = avg(&OuterSpaceConfig::stellar_default());
    let f = avg(&OuterSpaceConfig::stellar_fixed());
    let h = avg(&OuterSpaceConfig::handwritten());
    assert!(
        d < f && f < h,
        "ordering: {d:.2} < {f:.2} < {h:.2} violated"
    );
    assert!(
        (0.5..2.5).contains(&d),
        "default {d:.2} GFLOP/s (paper 1.42)"
    );
    assert!((1.5..3.5).contains(&f), "fixed {f:.2} GFLOP/s (paper 2.1)");
    assert!(
        (2.0..4.5).contains(&h),
        "handwritten {h:.2} GFLOP/s (paper 2.9)"
    );
}

/// Figure 18: "the row-partitioned mergers achieve at least 80% of the
/// flattened merger's performance on over a third of the SuiteSPARSE
/// matrices", and outright win on some.
#[test]
fn merger_crossover_on_suite() {
    let mats = suite();
    let comparisons: Vec<f64> = mats
        .iter()
        .enumerate()
        .map(|(n, m)| {
            compare_on_suite_matrix(m, 16, 70 + n as u64)
                .unwrap()
                .relative()
        })
        .collect();
    let at_least_80 = comparisons.iter().filter(|&&r| r >= 0.8).count();
    let wins = comparisons.iter().filter(|&&r| r > 1.0).count();
    assert!(
        at_least_80 * 3 >= mats.len(),
        "only {at_least_80}/{} matrices reach 80% (paper: over a third)",
        mats.len()
    );
    assert!(
        wins >= 2,
        "row-partitioned should win outright on some matrices, got {wins}"
    );
    // And it must lose badly somewhere (the imbalance-sensitive cases).
    let worst = comparisons.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        worst < 0.8,
        "worst case {worst:.2} should show imbalance sensitivity"
    );
}

/// §IV-F / §VI-D: the flattened (SpArch-style) merger costs ~13× the
/// row-partitioned merger's area.
#[test]
fn merger_area_ratio_near_13x() {
    let r = merger_area_ratio(&Technology::asap7());
    assert!((9.0..18.0).contains(&r), "area ratio {r:.1} (paper: 13x)");
}
