//! End-to-end integration: every design that the specification language can
//! express must compile, emit lint-clean Verilog, and produce coherent
//! area/timing numbers.

use stellar::area::{area_of, max_frequency_mhz, Technology};
use stellar::core::IndexId;
use stellar::prelude::*;
use stellar::rtl::{emit_accelerator, lint};

fn idx(n: usize) -> IndexId {
    IndexId::nth(n)
}

/// A gallery of specs spanning the five design concerns.
fn spec_gallery() -> Vec<AcceleratorSpec> {
    let mm = |n: usize| Functionality::matmul(n, n, n);
    vec![
        AcceleratorSpec::new("os_dense", mm(4))
            .with_transform(SpaceTimeTransform::output_stationary()),
        AcceleratorSpec::new("is_dense", mm(4))
            .with_transform(SpaceTimeTransform::input_stationary()),
        AcceleratorSpec::new("hex_dense", mm(4)).with_transform(SpaceTimeTransform::hexagonal()),
        AcceleratorSpec::new("pipelined", mm(4)).with_transform(
            SpaceTimeTransform::output_stationary()
                .with_time_scale(2)
                .unwrap(),
        ),
        AcceleratorSpec::new("csr_b", mm(4))
            .with_transform(SpaceTimeTransform::input_stationary())
            .with_skip(SkipSpec::skip(&[idx(1)], &[idx(2)])),
        AcceleratorSpec::new("csc_a_csr_b", mm(4))
            .with_transform(SpaceTimeTransform::input_stationary())
            .with_skip(SkipSpec::skip(&[idx(0)], &[idx(2)]))
            .with_skip(SkipSpec::skip(&[idx(1)], &[idx(2)])),
        AcceleratorSpec::new("a100", mm(4))
            .with_transform(SpaceTimeTransform::output_stationary())
            .with_skip(SkipSpec::optimistic_skip(&[idx(2)], &[idx(0)], 2)),
        AcceleratorSpec::new("balanced_row", mm(4))
            .with_transform(SpaceTimeTransform::input_stationary())
            .with_skip(SkipSpec::skip(&[idx(1)], &[idx(2)]))
            .with_shift(ShiftSpec::new(
                Region::all(3).restrict(idx(0), 2, 4),
                vec![-2, 0, 1],
                Granularity::RowGroup,
            )),
        AcceleratorSpec::new("balanced_pe", mm(4))
            .with_transform(SpaceTimeTransform::input_stationary())
            .with_shift(ShiftSpec::new(
                Region::all(3).restrict(idx(0), 2, 4),
                vec![-2, 0, 1],
                Granularity::PerPe,
            )),
    ]
}

#[test]
fn gallery_compiles_and_lints_clean() {
    for spec in spec_gallery() {
        let design = compile(&spec).unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        let netlist = emit_accelerator(&design);
        if let Err(errs) = lint::check(&netlist) {
            panic!(
                "{}: lint failed with {} errors, first: {}",
                spec.name(),
                errs.len(),
                errs[0]
            );
        }
        let verilog = netlist.to_verilog();
        assert!(
            verilog.contains(&format!("module {}_top", design.name)),
            "{}: missing top module",
            spec.name()
        );
    }
}

#[test]
fn gallery_area_and_timing_are_positive_and_finite() {
    let tech = Technology::asap7();
    for spec in spec_gallery() {
        let design = compile(&spec).unwrap();
        let area = area_of(&design, &tech);
        assert!(
            area.total_um2().is_finite() && area.total_um2() > 0.0,
            "{}",
            spec.name()
        );
        let f = max_frequency_mhz(&design, false, &tech);
        assert!((100.0..20_000.0).contains(&f), "{}: {f} MHz", spec.name());
    }
}

#[test]
fn sparse_designs_trade_wires_for_ports() {
    let dense = compile(&spec_gallery()[1]).unwrap();
    let sparse = compile(&spec_gallery()[4]).unwrap();
    let d = &dense.spatial_arrays[0];
    let s = &sparse.spatial_arrays[0];
    assert!(s.num_moving_conns() < d.num_moving_conns());
    assert!(s.num_io_ports() > d.num_io_ports());
    // The sparse design's extra ports cost regfile area.
    let tech = Technology::asap7();
    let da = area_of(&dense, &tech);
    let sa = area_of(&sparse, &tech);
    assert!(sa.regfiles_um2 >= da.regfiles_um2);
}

#[test]
fn design_round_trips_structurally() {
    // The design IR is plain data: cloning and comparing exercises the full
    // structural equality of every nested component.
    let design = compile(&spec_gallery()[0]).unwrap();
    assert_eq!(design, design.clone());
}

#[test]
fn verilog_grows_with_array_size() {
    let small = compile(
        &AcceleratorSpec::new("s", Functionality::matmul(2, 2, 2))
            .with_bounds(Bounds::from_extents(&[2, 2, 2])),
    )
    .unwrap();
    let large = compile(
        &AcceleratorSpec::new("l", Functionality::matmul(8, 8, 8))
            .with_bounds(Bounds::from_extents(&[8, 8, 8])),
    )
    .unwrap();
    let small_lines = emit_accelerator(&small).verilog_lines();
    let large_lines = emit_accelerator(&large).verilog_lines();
    assert!(
        large_lines > 2 * small_lines,
        "8x8 design ({large_lines} lines) should dwarf 2x2 ({small_lines} lines)"
    );
}
