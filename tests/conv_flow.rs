//! Convolution flow: a conv layer lowered via im2col (as Gemmini-class
//! accelerators do), run through the cycle-stepped systolic array, checked
//! against the direct convolution golden model.

use stellar::sim::{simulate_os_matmul, simulate_ws_matmul};
use stellar::tensor::ops::{conv2d, im2col};
use stellar::tensor::{DenseMatrix, DenseTensor};
use stellar::workloads::resnet50_layers;

fn filled_tensor(shape: &[usize], seed: u64) -> DenseTensor {
    let mut t = DenseTensor::zeros(shape);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let total: usize = shape.iter().product();
    let mut idx = vec![0usize; shape.len()];
    for _ in 0..total {
        state = state.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        t.set(&idx, ((state >> 45) % 11) as f64 - 5.0);
        for d in (0..shape.len()).rev() {
            idx[d] += 1;
            if idx[d] < shape[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    t
}

fn weight_matrix(w: &DenseTensor) -> DenseMatrix {
    let (kout, cin, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    let mut m = DenseMatrix::zeros(kout, cin * kh * kw);
    for k in 0..kout {
        for c in 0..cin {
            for r in 0..kh {
                for s in 0..kw {
                    m.set(k, (c * kh + r) * kw + s, w.at(&[k, c, r, s]));
                }
            }
        }
    }
    m
}

#[test]
fn conv_via_systolic_matches_direct() {
    let input = filled_tensor(&[2, 6, 6], 5);
    let weights = filled_tensor(&[3, 2, 3, 3], 6);
    let direct = conv2d(&input, &weights, 1, 1);
    let (patches, hout, wout) = im2col(&input, 3, 3, 1, 1);
    let wmat = weight_matrix(&weights).transpose(); // [C*KH*KW, K]

    // Run the GEMM on both systolic dataflows.
    let ws = simulate_ws_matmul(&patches, &wmat).unwrap();
    let os = simulate_os_matmul(&patches, &wmat).unwrap();
    assert!(ws.product.approx_eq(&os.product, 1e-9));

    for k in 0..3 {
        for y in 0..hout {
            for x in 0..wout {
                let want = direct.at(&[k, y, x]);
                let got = ws.product.at(y * wout + x, k);
                assert!(
                    (want - got).abs() < 1e-9,
                    "conv mismatch at ({k},{y},{x}): {want} vs {got}"
                );
            }
        }
    }
}

#[test]
fn strided_padded_conv_matches() {
    let input = filled_tensor(&[1, 8, 8], 9);
    let weights = filled_tensor(&[2, 1, 3, 3], 10);
    let direct = conv2d(&input, &weights, 2, 1);
    let (patches, hout, wout) = im2col(&input, 3, 3, 2, 1);
    let wmat = weight_matrix(&weights).transpose();
    let out = simulate_ws_matmul(&patches, &wmat).unwrap().product;
    assert_eq!(direct.shape(), &[2, hout, wout]);
    for k in 0..2 {
        for y in 0..hout {
            for x in 0..wout {
                assert!((direct.at(&[k, y, x]) - out.at(y * wout + x, k)).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn resnet_layer_shapes_lower_consistently() {
    // Every ResNet-50 conv lowers to a GEMM whose MACs equal the conv's.
    for conv in resnet50_layers() {
        let g = conv.to_gemm();
        let conv_macs = conv.cin * conv.cout * conv.k * conv.k * conv.out_hw() * conv.out_hw();
        assert_eq!(g.macs(), conv_macs as u64, "{}", conv.name);
    }
}
