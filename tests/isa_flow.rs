//! The full programming-interface flow of §V: tensors in DRAM are moved by
//! encoded RISC-V custom instructions into buffers and regfiles, then
//! consumed by the simulated spatial array.

use stellar::isa::{Host, Instruction, MemUnit, MetadataType, Program, TensorPayload};
use stellar::sim::{simulate_ws_matmul, DmaModel};
use stellar::tensor::{gen, AxisFormat};

fn dense_move(p: &mut Program, addr: u64, rows: u64, cols: u64, dst: &str) {
    p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer(dst));
    p.set_data_addr_src(addr);
    p.set_span(0, cols);
    p.set_span(1, rows);
    p.set_axis_type(0, AxisFormat::Dense);
    p.set_axis_type(1, AxisFormat::Dense);
    p.set_data_stride(0, 1);
    p.set_data_stride(1, cols);
    p.issue();
}

#[test]
fn every_program_instruction_round_trips_through_encoding() {
    let mut p = Program::new();
    dense_move(&mut p, 0x40, 8, 8, "SRAM_A");
    p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_B"));
    p.set_metadata_addr_src(0, MetadataType::RowId, 0x100);
    p.set_metadata_addr_src(0, MetadataType::Coord, 0x200);
    p.set_metadata_stride(0, MetadataType::Coord, 1);
    p.set_axis_type(0, AxisFormat::Compressed);
    p.set_constant(3, 1);
    p.issue();
    for instr in p.instructions() {
        let (funct, rs1, rs2) = instr.encode();
        let back = Instruction::decode(funct, rs1, rs2).expect("decodable");
        assert_eq!(&back, instr);
    }
}

#[test]
fn listing7_end_to_end_matmul() {
    // Store A (dense) and B (CSR) in DRAM, move both via the ISA, run the
    // systolic array on the moved data, and verify against the golden
    // product — the complete §V workflow.
    let a = gen::dense(6, 5, 21);
    let b = gen::uniform(5, 7, 0.5, 22);
    let mut host = Host::new();
    let a_addr = host.dram_store_dense(&a).unwrap();
    let (b_data, b_rows, b_coords) = host.dram_store_csr(&b).unwrap();

    let mut p = Program::new();
    dense_move(&mut p, a_addr, 6, 5, "SRAM_A");
    p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_B"));
    p.set_data_addr_src(b_data);
    p.set_metadata_addr_src(0, MetadataType::RowId, b_rows);
    p.set_metadata_addr_src(0, MetadataType::Coord, b_coords);
    p.set_span(1, 5);
    p.set_span(2, 7);
    p.set_axis_type(0, AxisFormat::Compressed);
    p.set_axis_type(1, AxisFormat::Dense);
    p.issue();
    host.run(&p).expect("program runs");

    let a_in = host.buffer_dense("SRAM_A").unwrap();
    let b_in = match host.buffer("SRAM_B").unwrap() {
        TensorPayload::Csr(m) => m.to_dense(),
        TensorPayload::Csc(m) => m.to_dense(),
        TensorPayload::Dense(m) => m.clone(),
    };
    let out = simulate_ws_matmul(&a_in, &b_in).unwrap();
    assert!(out.product.approx_eq(&a.matmul(&b.to_dense()), 1e-9));
}

#[test]
fn dma_cycle_accounting_scales_with_tensor_size() {
    let small = gen::dense(4, 4, 1);
    let large = gen::dense(64, 64, 2);
    let run = |m: &stellar::tensor::DenseMatrix| {
        let mut host = Host::new();
        let addr = host.dram_store_dense(m).unwrap();
        let mut p = Program::new();
        dense_move(&mut p, addr, m.rows() as u64, m.cols() as u64, "X");
        host.run(&p).unwrap();
        host.cycles()
    };
    assert!(run(&large) > 4 * run(&small));
}

#[test]
fn sparse_transfer_moves_metadata_words() {
    // A CSR transfer must cost more cycles than its nnz alone: row ids and
    // coordinates move too (Listing 7 configures three arrays).
    let b = gen::uniform(32, 32, 0.2, 5);
    let mut host = Host::new().with_dma(DmaModel::with_slots(1));
    let (b_data, b_rows, b_coords) = host.dram_store_csr(&b).unwrap();
    let mut p = Program::new();
    p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("B"));
    p.set_data_addr_src(b_data);
    p.set_metadata_addr_src(0, MetadataType::RowId, b_rows);
    p.set_metadata_addr_src(0, MetadataType::Coord, b_coords);
    p.set_span(1, 32);
    p.set_axis_type(0, AxisFormat::Compressed);
    p.set_axis_type(1, AxisFormat::Dense);
    p.issue();
    host.run(&p).unwrap();
    let dma = DmaModel::with_slots(1);
    let data_only = dma.contiguous_cycles(b.nnz() as u64);
    assert!(
        host.cycles() > data_only,
        "metadata transfers must be accounted"
    );
    // The payload arrived intact.
    assert_eq!(host.buffer_dense("B").unwrap(), b.to_dense());
}
