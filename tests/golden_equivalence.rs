//! Golden-model equivalence: the functional-notation interpreter, the
//! cycle-stepped systolic array, and the sparse reference kernels must all
//! agree with plain dense matrix arithmetic.

use std::collections::HashMap;

use stellar::core::{Bounds, Executor, Functionality};
use stellar::sim::simulate_ws_matmul;
use stellar::tensor::ops::{merge_fibers, spgemm_gustavson, spgemm_outer, spgemm_outer_partials};
use stellar::tensor::{gen, CscMatrix, DenseTensor};

#[test]
fn interpreter_systolic_and_golden_agree() {
    for seed in 0..5u64 {
        let m = 3 + (seed as usize % 4);
        let n = 2 + (seed as usize % 3);
        let k = 4 + (seed as usize % 2);
        let a = gen::dense(m, k, seed * 3 + 1);
        let b = gen::dense(k, n, seed * 3 + 2);
        let golden = a.matmul(&b);

        // Functional-notation interpreter.
        let f = Functionality::matmul(m, n, k);
        let tensors: Vec<_> = f.tensors().collect();
        let mut inputs = HashMap::new();
        inputs.insert(tensors[0], DenseTensor::from_matrix(&a));
        inputs.insert(tensors[1], DenseTensor::from_matrix(&b));
        let spec_out = Executor::new(&f, &Bounds::from_extents(&[m, n, k]))
            .run(&inputs)
            .unwrap()[&tensors[2]]
            .to_matrix();
        assert!(
            spec_out.approx_eq(&golden, 1e-9),
            "interpreter diverged (seed {seed})"
        );

        // Cycle-stepped systolic array.
        let sys_out = simulate_ws_matmul(&a, &b).unwrap().product;
        assert!(
            sys_out.approx_eq(&golden, 1e-9),
            "systolic diverged (seed {seed})"
        );
    }
}

#[test]
fn sparse_kernels_agree_with_dense() {
    for seed in 0..4u64 {
        let a = gen::uniform(40, 50, 0.08, seed * 7 + 1);
        let b = gen::uniform(50, 30, 0.08, seed * 7 + 2);
        let golden = a.to_dense().matmul(&b.to_dense());
        let gust = spgemm_gustavson(&a, &b).to_dense();
        let outer = spgemm_outer(&CscMatrix::from_csr(&a), &b).to_dense();
        assert!(
            gust.approx_eq(&golden, 1e-9),
            "gustavson diverged (seed {seed})"
        );
        assert!(
            outer.approx_eq(&golden, 1e-9),
            "outer-product diverged (seed {seed})"
        );
    }
}

#[test]
fn merge_phase_reconstructs_product_rows() {
    let a = gen::uniform(32, 32, 0.12, 9);
    let partials = spgemm_outer_partials(&CscMatrix::from_csr(&a), &a);
    let rows = stellar::sim::rows_of_partials(32, &partials);
    let golden = spgemm_outer(&CscMatrix::from_csr(&a), &a);
    for (r, fibers) in rows.iter().enumerate() {
        let merged = merge_fibers(fibers);
        let (cols, vals) = golden.row(r);
        assert_eq!(merged.coords, cols.to_vec(), "row {r} structure");
        for (got, want) in merged.values.iter().zip(vals) {
            assert!((got - want).abs() < 1e-9, "row {r} values");
        }
    }
}

#[test]
fn structured_pruning_preserves_surviving_values() {
    use stellar::tensor::structured::StructuredMatrix;
    let w = gen::dense(16, 32, 11);
    let s = StructuredMatrix::prune(&w, 2, 4);
    let dense = s.to_dense();
    // Every surviving value matches the original.
    for r in 0..16 {
        for c in 0..32 {
            let v = dense.at(r, c);
            if v != 0.0 {
                assert_eq!(v, w.at(r, c));
            }
        }
    }
    // Exactly half survive.
    assert_eq!(dense.nnz(), 16 * 32 / 2);
}
