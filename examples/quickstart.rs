//! Quickstart: specify an accelerator in the five-concern language,
//! compile it, emit Verilog, and estimate its area.
//!
//! Run with: `cargo run --example quickstart`

use stellar::area::{area_of, max_frequency_mhz, Technology};
use stellar::prelude::*;
use stellar::rtl::emit_accelerator;

fn main() -> Result<(), CompileError> {
    // Concern 1 — functionality: the paper's Listing 1 matmul, shown in
    // the paper's own notation.
    let func = Functionality::matmul(8, 8, 8);
    println!("-- functionality (Listing 1) --");
    print!("{}", func.to_listing());
    println!();

    // Concern 2 — dataflow: an output-stationary space-time transform
    // (Figure 2b). Swap a single matrix to get input-stationary or
    // hexagonal arrays.
    let spec = AcceleratorSpec::new("quickstart", func)
        .with_bounds(Bounds::from_extents(&[8, 8, 8]))
        .with_transform(SpaceTimeTransform::output_stationary())
        .with_data_bits(8);

    // Compile: elaborate -> prune -> transform -> optimize -> design IR.
    let design = compile(&spec)?;
    let arr = &design.spatial_arrays[0];
    println!("design        : {}", design.name);
    println!("PEs           : {}", arr.num_pes());
    println!("PE-to-PE wires: {}", arr.num_moving_conns());
    println!("regfile ports : {}", arr.num_io_ports());
    println!("time steps    : {}", arr.time_steps);
    for rf in &design.regfiles {
        println!(
            "regfile {:<4} : {} ({} entries)",
            rf.tensor, rf.kind, rf.entries
        );
    }

    // Emit synthesizable Verilog.
    let netlist = emit_accelerator(&design);
    let verilog = netlist.to_verilog();
    println!(
        "verilog       : {} modules, {} lines",
        netlist.modules().len(),
        verilog.lines().count()
    );

    // Area and frequency estimates.
    let tech = Technology::asap7();
    let area = area_of(&design, &tech);
    println!("area          : {:.0} um^2 total", area.total_um2());
    for (name, um2, pct) in area.rows() {
        if um2 > 0.0 {
            println!("  {name:<15} {um2:>10.0} um^2 ({pct:>4.1}%)");
        }
    }
    println!(
        "max frequency : {:.0} MHz",
        max_frequency_mhz(&design, false, &tech)
    );
    Ok(())
}
