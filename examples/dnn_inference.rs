//! End-to-end ResNet-50 inference on the Gemmini-class accelerator:
//! per-layer utilization and energy (Figures 16a and 17 of the paper).
//!
//! Run with: `cargo run --release --example dnn_inference`

use stellar::accels::{gemmini_design, run_resnet50};
use stellar::area::{energy_per_mac_pj, EnergyModel, Technology};
use stellar::sim::GemmParams;

fn main() {
    let design = gemmini_design();
    println!(
        "Gemmini-class design: {} PEs, {} buffers, {} regfiles\n",
        design.total_pes(),
        design.mem_buffers.len(),
        design.regfiles.len()
    );

    let hand = run_resnet50(&GemmParams::handwritten_gemmini()).expect("resnet50 run");
    let stellar_rows = run_resnet50(&GemmParams::stellar_gemmini()).expect("resnet50 run");
    let energy = EnergyModel::new(&design, Technology::intel22());

    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>12}",
        "layer", "hand util", "stlr util", "ratio", "stlr pJ/MAC"
    );
    let (mut hb, mut ht, mut sb, mut st) = (0u64, 0u64, 0u64, 0u64);
    for ((name, h), (_, s)) in hand.iter().zip(&stellar_rows) {
        let hu = h.utilization.fraction();
        let su = s.utilization.fraction();
        let epm = energy_per_mac_pj(&energy, &s.traffic);
        println!(
            "{name:<16} {:>9.1}% {:>9.1}% {:>8.2} {:>11.3}",
            100.0 * hu,
            100.0 * su,
            su / hu.max(1e-12),
            epm
        );
        hb += h.utilization.busy;
        ht += h.utilization.total;
        sb += s.utilization.busy;
        st += s.utilization.total;
    }
    let hu = hb as f64 / ht as f64;
    let su = sb as f64 / st as f64;
    println!(
        "\nend-to-end: handwritten {:.1}%, Stellar-generated {:.1}% ({:.0}% of handwritten)",
        100.0 * hu,
        100.0 * su,
        100.0 * su / hu
    );
}
