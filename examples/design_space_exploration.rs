//! Design-space exploration: the point of Stellar's separation of concerns
//! is that each axis can be swept *independently*. This example crosses
//! dataflows × sparsity × pipelining for one functionality and tabulates
//! structure, area, and frequency for every point.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use stellar::area::{area_of, array_max_frequency_mhz, Technology};
use stellar::core::IndexId;
use stellar::prelude::*;

fn main() -> Result<(), CompileError> {
    let (j, k) = (IndexId::nth(1), IndexId::nth(2));
    let tech = Technology::asap7();

    let dataflows: Vec<(&str, SpaceTimeTransform)> = vec![
        ("output-stat", SpaceTimeTransform::output_stationary()),
        ("input-stat", SpaceTimeTransform::input_stationary()),
        ("hexagonal", SpaceTimeTransform::hexagonal()),
    ];
    let sparsities: Vec<(&str, Option<SkipSpec>)> = vec![
        ("dense", None),
        ("csr-B", Some(SkipSpec::skip(&[j], &[k]))),
        (
            "2:4-A",
            Some(SkipSpec::optimistic_skip(&[k], &[IndexId::nth(0)], 2)),
        ),
    ];
    let pipelines: Vec<(&str, i64)> = vec![("x1", 1), ("x2", 2)];

    println!(
        "{:<12} {:<7} {:<4} {:>4} {:>6} {:>6} {:>10} {:>9}",
        "dataflow", "sparsity", "pipe", "PEs", "wires", "ports", "area um^2", "arr MHz"
    );
    let mut pareto: Vec<(String, f64, f64)> = Vec::new();
    for (dname, t) in &dataflows {
        for (sname, skip) in &sparsities {
            for (pname, scale) in &pipelines {
                let transform = if *scale == 1 {
                    t.clone()
                } else {
                    t.with_time_scale(*scale)?
                };
                let mut spec = AcceleratorSpec::new(
                    format!("{dname}_{sname}_{pname}"),
                    Functionality::matmul(8, 8, 8),
                )
                .with_bounds(Bounds::from_extents(&[8, 8, 8]))
                .with_transform(transform)
                .with_data_bits(8)
                .with_host_cpu(false);
                if let Some(s) = skip {
                    spec = spec.with_skip(s.clone());
                }
                let d = compile(&spec)?;
                let arr = &d.spatial_arrays[0];
                let area = area_of(&d, &tech).total_um2();
                let mhz = array_max_frequency_mhz(&d, &tech);
                println!(
                    "{:<12} {:<7} {:<4} {:>4} {:>6} {:>6} {:>10.0} {:>9.0}",
                    dname,
                    sname,
                    pname,
                    arr.num_pes(),
                    arr.num_moving_conns(),
                    arr.num_io_ports(),
                    area,
                    mhz
                );
                pareto.push((format!("{dname}/{sname}/{pname}"), area, mhz));
            }
        }
    }

    // Report the Pareto frontier on (area down, frequency up).
    pareto.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut best_mhz = 0.0;
    let frontier: Vec<&(String, f64, f64)> = pareto
        .iter()
        .filter(|(_, _, mhz)| {
            if *mhz > best_mhz {
                best_mhz = *mhz;
                true
            } else {
                false
            }
        })
        .collect();
    println!("\nPareto frontier (min area for each frequency tier):");
    for (name, area, mhz) in frontier {
        println!("  {name:<28} {area:>9.0} um^2 @ {mhz:>6.0} MHz");
    }
    Ok(())
}
