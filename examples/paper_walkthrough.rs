//! A guided tour through the paper's listings, 1 to 7, each rendered by
//! the corresponding piece of this reproduction.
//!
//! Run with: `cargo run --example paper_walkthrough`

use stellar::core::memory::EmissionOrder;
use stellar::core::IndexId;
use stellar::isa::{disassemble, MemUnit, MetadataType, Program};
use stellar::prelude::*;

fn main() -> Result<(), CompileError> {
    let (i, j, k) = (IndexId::nth(0), IndexId::nth(1), IndexId::nth(2));

    // ---- Listing 1: the functional specification of a matmul accelerator.
    println!("== Listing 1 — functional specification ==");
    let func = Functionality::matmul(16, 16, 16);
    print!("{}", func.to_listing());

    // ---- Figure 2 / Equation 1: space-time transforms.
    println!("\n== Figure 2 — space-time transforms ==");
    for (name, t) in [
        ("input-stationary", SpaceTimeTransform::input_stationary()),
        ("output-stationary", SpaceTimeTransform::output_stationary()),
        ("hexagonal", SpaceTimeTransform::hexagonal()),
    ] {
        println!("{name}: T = {:?}", t.matrix());
        println!(
            "  MAC at (i=1, j=2, k=3) runs at (space, time) = {:?}",
            t.apply(&[1, 2, 3])
        );
    }

    // ---- Listing 2: sparse data structures.
    println!("\n== Listing 2 — sparse data structures ==");
    let clauses = [
        SkipSpec::skip(&[i], &[k]).when_tensor(func.tensors().next().unwrap()),
        SkipSpec::skip(&[j], &[k]).when_tensor(func.tensors().nth(1).unwrap()),
        SkipSpec::skip(&[i, k], &[]),
    ];
    for c in &clauses {
        println!("{}", c.describe(&func));
    }

    // ---- Listings 3-4: load balancing.
    println!("\n== Listings 3/4 — load balancing ==");
    let l3 = ShiftSpec::new(
        Region::all(3).restrict(i, 8, 16),
        vec![-8, 0, 1],
        Granularity::RowGroup,
    );
    let l4 = ShiftSpec::new(Region::all(3), vec![0, 0, 0], Granularity::PerPe);
    println!("Listing 3: {l3}  (rows share work with adjacent rows)");
    println!("Listing 4: {l4}  (a small set of very flexible PEs)");

    // ---- Listing 6: hardcoded memory buffer parameters.
    println!("\n== Listing 6 — hardcoded read parameters ==");
    let hc = HardcodedParams::new(vec![4, 4], EmissionOrder::Wavefront);
    println!("spans(0) -> 4, spans(1) -> 4; emission order (Figure 13a):");
    for (t, group) in [(0, 0..1), (1, 1..3), (2, 3..6)] {
        let seq = hc.emission_sequence();
        println!("  t={t}: {:?}", &seq[group]);
    }

    // ---- The compiled design: Figures 4 and 14 fall out.
    println!("\n== Compiled design (CSR-B sparse matmul) ==");
    let design = compile(
        &AcceleratorSpec::new("walkthrough", Functionality::matmul(8, 8, 8))
            .with_bounds(Bounds::from_extents(&[8, 8, 8]))
            .with_transform(SpaceTimeTransform::input_stationary())
            .with_skip(SkipSpec::skip(&[j], &[k]))
            .with_shift(l3.clone())
            .with_data_bits(8),
    )?;
    print!("{}", design.summary());

    // ---- Listing 7 / Table II: the programming interface.
    println!("\n== Listing 7 — moving matrices via the custom ISA ==");
    let mut p = Program::new();
    p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_B"));
    p.set_data_addr_src(0x2000);
    p.set_metadata_addr_src(0, MetadataType::RowId, 0x3000);
    p.set_metadata_addr_src(0, MetadataType::Coord, 0x4000);
    p.set_span(0, u64::MAX);
    p.set_span(1, 64);
    p.set_data_stride(0, 1);
    p.set_metadata_stride(0, MetadataType::Coord, 1);
    p.set_metadata_stride(1, MetadataType::RowId, 1);
    p.set_axis_type(0, AxisFormat::Compressed);
    p.set_axis_type(1, AxisFormat::Dense);
    p.issue();
    print!("{}", disassemble(&p));
    println!("\n({} encoded 64-bit instructions)", p.instructions().len());
    Ok(())
}
