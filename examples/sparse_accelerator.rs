//! A sparse matmul accelerator end to end: sparsity specification, pruned
//! hardware generation, and load-balanced execution on an imbalanced
//! workload (the paper's Figures 4, 6 and 10).
//!
//! Run with: `cargo run --example sparse_accelerator`

use stellar::core::IndexId;
use stellar::prelude::*;
use stellar::sim::{simulate_sparse_matmul, BalancePolicy, SparseArrayParams};
use stellar::tensor::gen;

fn main() -> Result<(), CompileError> {
    let (i, j, k) = (IndexId::nth(0), IndexId::nth(1), IndexId::nth(2));

    // Dense baseline: the input-stationary array of Figure 2a.
    let dense = compile(
        &AcceleratorSpec::new("dense_mm", Functionality::matmul(8, 8, 8))
            .with_bounds(Bounds::from_extents(&[8, 8, 8]))
            .with_transform(SpaceTimeTransform::input_stationary()),
    )?;

    // Sparse variant: "Skip j when B(k, j) == 0" (Listing 5) makes B a CSR
    // matrix; the compiler removes the vertical accumulation wires and adds
    // regfile ports (Figure 4). A Shift clause adds row-group balancing.
    let sparse = compile(
        &AcceleratorSpec::new("sparse_mm", Functionality::matmul(8, 8, 8))
            .with_bounds(Bounds::from_extents(&[8, 8, 8]))
            .with_transform(SpaceTimeTransform::input_stationary())
            .with_skip(SkipSpec::skip(&[j], &[k]))
            .with_shift(ShiftSpec::new(
                Region::all(3).restrict(i, 4, 8),
                vec![-4, 0, 1],
                Granularity::RowGroup,
            )),
    )?;

    let (da, sa) = (&dense.spatial_arrays[0], &sparse.spatial_arrays[0]);
    println!("                 dense   sparse");
    println!(
        "PE-to-PE wires : {:>5}   {:>5}",
        da.num_moving_conns(),
        sa.num_moving_conns()
    );
    println!(
        "regfile ports  : {:>5}   {:>5}",
        da.num_io_ports(),
        sa.num_io_ports()
    );
    println!(
        "load balancers : {:>5}   {:>5}",
        dense.load_balancers.len(),
        sparse.load_balancers.len()
    );

    // Execute an imbalanced B matrix (Figure 6): the heavy rows pile onto
    // the first two lanes.
    let b = gen::imbalanced(64, 512, 2, 192, 4, 42);
    println!(
        "\nimbalanced B: 64 rows on 8 lanes; first rows have {:?} non-zeros",
        (0..8).map(|r| b.row_len(r)).collect::<Vec<_>>()
    );
    for (name, policy) in [
        ("no balancing", BalancePolicy::None),
        ("adjacent rows (Listing 3)", BalancePolicy::AdjacentRows),
        ("fully flexible (Listing 4)", BalancePolicy::Global),
    ] {
        let r = simulate_sparse_matmul(
            &b,
            &SparseArrayParams {
                lanes: 8,
                row_startup_cycles: 1,
                balance: policy,
            },
        )
        .expect("sparse simulation");
        println!(
            "{name:<26}: {:>5} cycles, {:>5.1}% PE utilization",
            r.stats.cycles,
            100.0 * r.utilization()
        );
    }
    Ok(())
}
