//! Programming a Stellar accelerator through the RISC-V custom ISA of
//! Table II: the two data movements of Listing 7 (a dense matrix and a CSR
//! matrix), followed by a cycle-stepped systolic matmul on the moved data.
//!
//! Run with: `cargo run --example isa_programming`

use stellar::isa::{Host, MemUnit, MetadataType, Program, TensorPayload};
use stellar::sim::simulate_ws_matmul;
use stellar::tensor::{gen, AxisFormat};

fn main() {
    let mut host = Host::new();

    // Tensors in DRAM: a dense A and a sparse (CSR) B.
    let a = gen::dense(8, 8, 1);
    let b = gen::uniform(8, 8, 0.4, 2);
    let a_addr = host.dram_store_dense(&a).expect("store A");
    let (b_data, b_row_ids, b_coords) = host.dram_store_csr(&b).expect("store B");

    // Listing 7, first half: move the dense matrix into SRAM_A.
    let mut p = Program::new();
    p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_A"));
    p.set_data_addr_src(a_addr);
    for axis in 0..2u8 {
        p.set_span(axis, 8);
        p.set_axis_type(axis, AxisFormat::Dense);
    }
    p.set_data_stride(0, 1);
    p.set_data_stride(1, 8);
    p.issue();

    // Listing 7, second half: move the CSR matrix into SRAM_B.
    p.set_src_and_dst(MemUnit::Dram, MemUnit::buffer("SRAM_B"));
    p.set_data_addr_src(b_data);
    p.set_metadata_addr_src(0, MetadataType::RowId, b_row_ids);
    p.set_metadata_addr_src(0, MetadataType::Coord, b_coords);
    p.set_span(1, 8); // rows
    p.set_span(2, 8); // column bound
    p.set_data_stride(0, 1);
    p.set_metadata_stride(0, MetadataType::Coord, 1);
    p.set_metadata_stride(1, MetadataType::RowId, 1);
    p.set_axis_type(0, AxisFormat::Compressed);
    p.set_axis_type(1, AxisFormat::Dense);
    p.issue();

    // Every instruction is a real encoded RISC-V custom instruction.
    println!(
        "program: {} instructions, {} issues",
        p.instructions().len(),
        p.num_issues()
    );
    for instr in p.instructions().iter().take(4) {
        let (funct, rs1, rs2) = instr.encode();
        println!("  funct={funct} rs1={rs1:#010x} rs2={rs2:#x}  ({instr})");
    }
    println!("  ...");

    host.run(&p).expect("program executes");
    println!("DMA cycles for both transfers: {}", host.cycles());

    // The buffers now hold the tensors; run the systolic array on them.
    let a_in = host.buffer_dense("SRAM_A").expect("SRAM_A filled");
    let b_in = match host.buffer("SRAM_B").expect("SRAM_B filled") {
        TensorPayload::Csr(m) => m.to_dense(),
        TensorPayload::Csc(m) => m.to_dense(),
        TensorPayload::Dense(m) => m.clone(),
    };
    let result = simulate_ws_matmul(&a_in, &b_in).expect("systolic simulation");
    let golden = a.matmul(&b.to_dense());
    assert!(
        result.product.approx_eq(&golden, 1e-9),
        "systolic result must match golden"
    );
    println!(
        "systolic matmul: {} cycles, {:.1}% PE utilization, result verified against golden model",
        result.stats.cycles,
        100.0 * result.stats.utilization.fraction()
    );
}
